package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/tomo"
	"repro/internal/topo"
)

// fig1Wire converts the Fig. 1 topology with its 23 identifiable paths
// into the POST /v1/topologies wire format.
func fig1Wire(t testing.TB) (edges, paths [][]string, f *topo.Fig1Topology, sys *tomo.System) {
	t.Helper()
	f = topo.Fig1()
	selected, rank, err := tomo.SelectPaths(f.G, f.Monitors, tomo.SelectOptions{Exhaustive: true, TargetPaths: 23})
	if err != nil || rank != 10 {
		t.Fatalf("SelectPaths: rank=%d err=%v", rank, err)
	}
	sys, err = tomo.NewSystem(f.G, selected)
	if err != nil {
		t.Fatal(err)
	}
	name := func(v graph.NodeID) string {
		n, err := f.G.NodeName(v)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	for _, l := range f.G.Links() {
		edges = append(edges, []string{name(l.A), name(l.B)})
	}
	for _, p := range selected {
		var walk []string
		for _, v := range p.Nodes {
			walk = append(walk, name(v))
		}
		paths = append(paths, walk)
	}
	return edges, paths, f, sys
}

func postJSON(t testing.TB, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func decodeInto(t testing.TB, raw []byte, into any) {
	t.Helper()
	if err := json.Unmarshal(raw, into); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
}

func TestRegisterEstimateInspectOverHTTP(t *testing.T) {
	edges, paths, f, sys := fig1Wire(t)
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, raw := postJSON(t, ts, "/v1/topologies", TopologyRequest{
		Name: "fig1", Edges: edges, Paths: paths,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status = %d, body %s", resp.StatusCode, raw)
	}
	var topoResp TopologyResponse
	decodeInto(t, raw, &topoResp)
	if topoResp.NumLinks != 10 || topoResp.NumPaths != 23 || !topoResp.Identifiable {
		t.Fatalf("unexpected registration: %+v", topoResp)
	}
	if topoResp.Digest != sys.Digest() {
		t.Errorf("wire digest %q != local digest %q", topoResp.Digest, sys.Digest())
	}

	// Clean estimate round trips the forward model.
	x := make(la.Vector, 10)
	rng := rand.New(rand.NewSource(5))
	for i := range x {
		x[i] = 1 + rng.Float64()*19
	}
	y, err := sys.Measure(x)
	if err != nil {
		t.Fatal(err)
	}
	resp, raw = postJSON(t, ts, "/v1/estimate", RoundsRequest{Topology: "fig1", Y: y})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate status = %d, body %s", resp.StatusCode, raw)
	}
	var est EstimateResponse
	decodeInto(t, raw, &est)
	if len(est.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(est.Results))
	}
	if !la.Vector(est.Results[0].XHat).Equal(x, 1e-8) {
		t.Errorf("x̂ = %v, want %v", est.Results[0].XHat, x)
	}

	// Attacked rounds alarm, clean rounds don't.
	sc := &core.Scenario{
		Sys:        sys,
		Thresholds: tomo.DefaultThresholds(),
		Attackers:  f.Attackers,
		TrueX:      x,
	}
	res, err := core.ChosenVictim(sc, []graph.LinkID{f.PaperLink[10]})
	if err != nil || !res.Feasible {
		t.Fatalf("ChosenVictim: feasible=%v err=%v", res != nil && res.Feasible, err)
	}
	resp, raw = postJSON(t, ts, "/v1/inspect", RoundsRequest{
		Topology: "fig1",
		Rounds:   [][]float64{y, res.YObserved, y},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inspect status = %d, body %s", resp.StatusCode, raw)
	}
	var insp InspectResponse
	decodeInto(t, raw, &insp)
	if len(insp.Reports) != 3 {
		t.Fatalf("got %d reports, want 3", len(insp.Reports))
	}
	want := []bool{false, true, false}
	for i, rep := range insp.Reports {
		if rep.Detected != want[i] {
			t.Errorf("round %d: detected=%v, want %v (residual %g)", i, rep.Detected, want[i], rep.ResidualNorm)
		}
	}
	if insp.Alarms != 1 {
		t.Errorf("alarms = %d, want 1", insp.Alarms)
	}

	// A huge alpha override silences the alarm without re-registering.
	resp, raw = postJSON(t, ts, "/v1/inspect", RoundsRequest{
		Topology: "fig1", Y: res.YObserved, Alpha: 1e12,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inspect override status = %d, body %s", resp.StatusCode, raw)
	}
	decodeInto(t, raw, &insp)
	if insp.Alarms != 0 || insp.Alpha != 1e12 {
		t.Errorf("override: alarms=%d alpha=%g, want 0 and 1e12", insp.Alarms, insp.Alpha)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	edges, paths, _, _ := fig1Wire(t)
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, raw := postJSON(t, ts, "/v1/topologies", TopologyRequest{Name: "fig1", Edges: edges, Paths: paths}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, raw)
	}

	t.Run("duplicate name conflicts", func(t *testing.T) {
		resp, _ := postJSON(t, ts, "/v1/topologies", TopologyRequest{Name: "fig1", Edges: edges, Paths: paths})
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("status = %d, want 409", resp.StatusCode)
		}
	})
	t.Run("unknown topology 404", func(t *testing.T) {
		resp, _ := postJSON(t, ts, "/v1/estimate", RoundsRequest{Topology: "nope", Y: make([]float64, 23)})
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("status = %d, want 404", resp.StatusCode)
		}
	})
	t.Run("malformed JSON 400", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("neither y nor rounds 400", func(t *testing.T) {
		resp, _ := postJSON(t, ts, "/v1/estimate", RoundsRequest{Topology: "fig1"})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("wrong measurement length 400", func(t *testing.T) {
		resp, _ := postJSON(t, ts, "/v1/inspect", RoundsRequest{Topology: "fig1", Y: []float64{1, 2}})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("unidentifiable topology 422", func(t *testing.T) {
		// A path cover that cannot separate the two links of a chain.
		resp, _ := postJSON(t, ts, "/v1/topologies", TopologyRequest{
			Name:  "chain",
			Edges: [][]string{{"m1", "a"}, {"a", "m2"}},
			Paths: [][]string{{"m1", "a", "m2"}},
		})
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("status = %d, want 422", resp.StatusCode)
		}
	})
	t.Run("GET on POST route rejected", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/estimate")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("status = %d, want 405", resp.StatusCode)
		}
	})
}

func TestConcurrentEstimateAndInspect(t *testing.T) {
	// Many goroutines hammer estimate and inspect on a shared topology;
	// under -race this is the service's core concurrency guarantee.
	edges, paths, _, sys := fig1Wire(t)
	srv := New(Config{Workers: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if resp, raw := postJSON(t, ts, "/v1/topologies", TopologyRequest{Name: "fig1", Edges: edges, Paths: paths}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, raw)
	}
	x := make(la.Vector, 10)
	for i := range x {
		x[i] = float64(2 + i)
	}
	y, err := sys.Measure(x)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 128)
	for k := 0; k < 24; k++ {
		inspect := k%2 == 1
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				path := "/v1/estimate"
				if inspect {
					path = "/v1/inspect"
				}
				raw, _ := json.Marshal(RoundsRequest{Topology: "fig1", Rounds: [][]float64{y, y}})
				resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
				if err != nil {
					errs <- err
					return
				}
				var buf bytes.Buffer
				_, _ = buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, buf.String())
					return
				}
				if inspect {
					var ir InspectResponse
					if err := json.Unmarshal(buf.Bytes(), &ir); err != nil {
						errs <- err
						return
					}
					if ir.Alarms != 0 {
						errs <- fmt.Errorf("clean rounds alarmed: %+v", ir)
						return
					}
				} else {
					var er EstimateResponse
					if err := json.Unmarshal(buf.Bytes(), &er); err != nil {
						errs <- err
						return
					}
					if !la.Vector(er.Results[0].XHat).Equal(x, 1e-8) {
						errs <- fmt.Errorf("estimate drifted: %v", er.Results[0].XHat)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := srv.Metrics().EstimateRounds.Load(); got != 120 {
		t.Errorf("estimate rounds = %d, want 120", got)
	}
	if got := srv.Metrics().InspectRounds.Load(); got != 120 {
		t.Errorf("inspect rounds = %d, want 120", got)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	edges, paths, _, sys := fig1Wire(t)
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if resp, raw := postJSON(t, ts, "/v1/topologies", TopologyRequest{Name: "fig1", Edges: edges, Paths: paths}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, raw)
	}
	y := make([]float64, sys.NumPaths())
	if resp, raw := postJSON(t, ts, "/v1/estimate", RoundsRequest{Topology: "fig1", Y: y}); resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: %d %s", resp.StatusCode, raw)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hr.Status != "ok" || len(hr.Topologies) != 1 || hr.Topologies[0] != "fig1" {
		t.Errorf("healthz = %+v", hr)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		`tomographyd_requests_total{route="topologies"} 1`,
		`tomographyd_requests_total{route="estimate"} 1`,
		"tomographyd_estimate_rounds_total 1",
		"tomographyd_solver_cache_misses_total 1",
		"tomographyd_estimate_latency_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestPoolShedsOnExpiredContext(t *testing.T) {
	// A request whose deadline expires while the pool is full is shed
	// with 503 instead of queuing forever.
	_, _, _, sys := fig1Wire(t)
	srv := New(Config{Workers: 1, RequestTimeout: 1})
	// Occupy the only worker slot directly.
	release := make(chan struct{})
	acquired := make(chan struct{})
	go func() {
		_ = srv.pool.Do(context.Background(), func() error {
			close(acquired)
			<-release
			return nil
		})
	}()
	<-acquired
	defer close(release)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if _, err := srv.Registry().RegisterSystem("fig1", sys, 0); err != nil {
		t.Fatal(err)
	}
	resp, raw := postJSON(t, ts, "/v1/estimate", RoundsRequest{Topology: "fig1", Y: make([]float64, sys.NumPaths())})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503", resp.StatusCode, raw)
	}
	if srv.Metrics().ReqRejected.Load() == 0 {
		t.Errorf("rejected counter not incremented")
	}
	var er errorResponse
	decodeInto(t, raw, &er)
	if !strings.Contains(er.Error, "saturated") {
		t.Errorf("error %q does not mention saturation", er.Error)
	}
}

func TestRegistryDirect(t *testing.T) {
	m := NewMetrics()
	reg := NewRegistry(m)
	_, _, _, sys := fig1Wire(t)
	e1, err := reg.RegisterSystem("a", sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e1.CacheHit {
		t.Errorf("first registration hit the cache")
	}
	// Same R under a different name: the factorization is shared.
	sys2, err := tomo.NewSystem(sys.Graph(), sys.Paths())
	if err != nil {
		t.Fatal(err)
	}
	e2, err := reg.RegisterSystem("b", sys2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !e2.CacheHit {
		t.Errorf("identical routing matrix missed the solver cache")
	}
	if e1.Digest != e2.Digest {
		t.Errorf("digests differ for identical R")
	}
	if m.CacheHits.Load() != 1 || m.CacheMisses.Load() != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", m.CacheHits.Load(), m.CacheMisses.Load())
	}
	if _, err := reg.RegisterSystem("a", sys, 0); !errors.Is(err, ErrConflict) {
		t.Errorf("duplicate name: err = %v, want ErrConflict", err)
	}
	if _, err := reg.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get missing: err = %v, want ErrNotFound", err)
	}
	if names := reg.Names(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	if reg.Len() != 2 {
		t.Errorf("Len = %d, want 2", reg.Len())
	}
}

func TestRegisterWireValidation(t *testing.T) {
	reg := NewRegistry(nil)
	valid := func() (edges, paths [][]string) {
		return [][]string{{"m1", "m2"}, {"m2", "m3"}, {"m1", "m3"}},
			[][]string{{"m1", "m2"}, {"m2", "m3"}, {"m1", "m3"}}
	}
	t.Run("valid registers", func(t *testing.T) {
		edges, paths := valid()
		e, err := reg.Register("tri", edges, paths, 0)
		if err != nil {
			t.Fatalf("Register: %v", err)
		}
		if e.Sys.NumLinks() != 3 || e.Sys.NumPaths() != 3 {
			t.Errorf("got %d links, %d paths", e.Sys.NumLinks(), e.Sys.NumPaths())
		}
	})
	cases := []struct {
		name  string
		mutil func(edges, paths [][]string) (e, p [][]string)
	}{
		{"no edges", func(e, p [][]string) ([][]string, [][]string) { return nil, p }},
		{"no paths", func(e, p [][]string) ([][]string, [][]string) { return e, nil }},
		{"bad edge arity", func(e, p [][]string) ([][]string, [][]string) {
			return append(e, []string{"x"}), p
		}},
		{"empty node name", func(e, p [][]string) ([][]string, [][]string) {
			return append(e, []string{"", "y"}), p
		}},
		{"self loop", func(e, p [][]string) ([][]string, [][]string) {
			return append(e, []string{"z", "z"}), p
		}},
		{"short path", func(e, p [][]string) ([][]string, [][]string) {
			return e, append(p, []string{"m1"})
		}},
		{"unknown path node", func(e, p [][]string) ([][]string, [][]string) {
			return e, append(p, []string{"m1", "ghost"})
		}},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			edges, paths := valid()
			e, p := tc.mutil(edges, paths)
			if _, err := reg.Register(fmt.Sprintf("bad%d", i), e, p, 0); !errors.Is(err, ErrBadRequest) {
				t.Errorf("err = %v, want ErrBadRequest", err)
			}
		})
	}
	// A walk over a non-existent link is rejected.
	if _, err := reg.Register("nolink",
		[][]string{{"m1", "a"}, {"a", "m2"}},
		[][]string{{"m1", "m2"}}, 0); !errors.Is(err, ErrBadRequest) {
		t.Errorf("missing link: err = %v, want ErrBadRequest", err)
	}
}
