package serve

import (
	"context"
	"errors"
	"fmt"
)

// ErrSaturated is returned when a request cannot obtain a worker slot
// before its deadline — the service's load-shedding signal.
var ErrSaturated = errors.New("serve: worker pool saturated")

// Pool bounds the number of requests doing solver work concurrently. The
// HTTP layer accepts arbitrarily many connections; the pool is what
// keeps a burst of heavy batch requests from starving the scheduler and
// blowing past memory limits. Acquisition respects the request context,
// so a caller whose deadline expires while queued is shed with
// ErrSaturated instead of being served late.
type Pool struct {
	sem chan struct{}
}

// NewPool creates a pool with n worker slots (n < 1 is treated as 1).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{sem: make(chan struct{}, n)}
}

// Size returns the number of worker slots.
func (p *Pool) Size() int { return cap(p.sem) }

// ErrBusy is returned by TryDo when every worker slot is taken at the
// moment of the call. Unlike ErrSaturated (a deadline expiring while
// queued), ErrBusy is an instantaneous verdict: round streams use it to
// shed with 429 before committing to a response stream, instead of
// holding a long-lived request in the queue.
var ErrBusy = errors.New("serve: all worker slots busy")

// TryDo runs fn on a worker slot if one is free right now, failing fast
// with ErrBusy otherwise. fn's error is returned as-is.
func (p *Pool) TryDo(fn func() error) error {
	select {
	case p.sem <- struct{}{}:
	default:
		return ErrBusy
	}
	defer func() { <-p.sem }()
	return fn()
}

// Do runs fn on an acquired worker slot, or fails with ErrSaturated when
// ctx is done first. fn's error is returned as-is.
func (p *Pool) Do(ctx context.Context, fn func() error) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrSaturated, err)
	}
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return fmt.Errorf("%w: %v", ErrSaturated, ctx.Err())
	}
	defer func() { <-p.sem }()
	return fn()
}
