package serve

import (
	"strings"
	"testing"

	"repro/internal/la"
	"repro/internal/tomo"
	"repro/internal/topo"
)

// backboneSparse builds a backbone measurement system on the forced
// sparse route: links-scale topology, one-hop probe per link plus a
// multi-hop mesh.
func backboneSparse(t testing.TB, seed int64, links, extra int) *tomo.System {
	t.Helper()
	g, err := topo.Backbone(seed, links)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := topo.BackbonePaths(g, extra, seed)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := tomo.NewSparseSystem(g, paths)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestRegisterSparseSystemFeedsSolverMetrics(t *testing.T) {
	m := NewMetrics()
	reg := NewRegistry(m)
	sys := backboneSparse(t, 11, 400, 50)
	e, err := reg.RegisterSystem("bb", sys, 0)
	if err != nil {
		t.Fatalf("RegisterSystem: %v", err)
	}
	if e.Sys.Dense() {
		t.Fatal("sparse system registered with a dense mirror")
	}
	x := make(la.Vector, sys.NumLinks())
	for i := range x {
		x[i] = 1 + float64(i%7)/10
	}
	y, err := sys.Measure(x)
	if err != nil {
		t.Fatal(err)
	}
	const solves = 4
	for k := 0; k < solves; k++ {
		if _, err := e.Sys.Estimate(y); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.SolverIterations.Count(); got != solves {
		t.Errorf("SolverIterations count = %d, want %d", got, solves)
	}
	if got := m.SolverResidual.Count(); got != solves {
		t.Errorf("SolverResidual count = %d, want %d", got, solves)
	}
	var b strings.Builder
	m.WritePrometheus(&b)
	text := b.String()
	for _, metric := range []string{"tomographyd_solver_iterations", "tomographyd_solver_residual_norm"} {
		if !strings.Contains(text, metric) {
			t.Errorf("/metrics exposition missing %s", metric)
		}
	}
}

func TestSparseSolverCacheShared(t *testing.T) {
	m := NewMetrics()
	reg := NewRegistry(m)
	a := backboneSparse(t, 12, 300, 40)
	e1, err := reg.RegisterSystem("a", a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e1.CacheHit {
		t.Error("first sparse registration hit the cache")
	}
	// Same topology recipe ⇒ same routing matrix ⇒ same digest: the
	// second registration must adopt the cached sparse solver and skip
	// the CondEst screen.
	b := backboneSparse(t, 12, 300, 40)
	e2, err := reg.RegisterSystem("b", b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !e2.CacheHit {
		t.Error("identical sparse routing matrix missed the solver cache")
	}
	if e1.Digest != e2.Digest {
		t.Error("digests differ for identical sparse R")
	}
	if m.CacheHits.Load() != 1 || m.CacheMisses.Load() != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", m.CacheHits.Load(), m.CacheMisses.Load())
	}
}

// TestRegisterISPScale is the subsystem's acceptance check: register a
// ≥100k-link backbone and run an estimate through the full registry
// path without ever materializing a dense P×L or L×L operator, with the
// solve statistics landing in the metrics histograms.
func TestRegisterISPScale(t *testing.T) {
	if testing.Short() {
		t.Skip("ISP-scale registration skipped in -short mode")
	}
	m := NewMetrics()
	reg := NewRegistry(m)
	sys := backboneSparse(t, 100, 100000, 1000)
	if sys.NumLinks() < 100000 {
		t.Fatalf("backbone has %d links, want ≥ 100000", sys.NumLinks())
	}
	e, err := reg.RegisterSystem("isp", sys, 0)
	if err != nil {
		t.Fatalf("RegisterSystem at 100k links: %v", err)
	}
	if e.Sys.Dense() {
		t.Fatal("100k-link system materialized a dense mirror")
	}
	x := make(la.Vector, sys.NumLinks())
	for i := range x {
		x[i] = 1 + float64(i%11)/10
	}
	y, err := sys.Measure(x)
	if err != nil {
		t.Fatal(err)
	}
	xhat, err := e.Sys.Estimate(y)
	if err != nil {
		t.Fatalf("Estimate at 100k links: %v", err)
	}
	if !xhat.Equal(x, 1e-5) {
		t.Fatal("noise-free 100k-link estimate did not recover the true metrics")
	}
	if m.SolverIterations.Count() == 0 || m.SolverResidual.Count() == 0 {
		t.Error("ISP-scale solve left no trace in the solver histograms")
	}
}
