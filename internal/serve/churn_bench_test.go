package serve

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/tomo"
	"repro/internal/topo"
)

// churnBenchSystem builds a backbone measurement system at the given
// link scale. tomo auto-selects the substrate: 1k links fits the dense
// budget (rank-1 Cholesky mutations), 10k links goes sparse (CSR
// rebuild + coverage screen) — so the two scales exercise both routes a
// churn epoch can take.
func churnBenchSystem(b *testing.B, links int) *tomo.System {
	b.Helper()
	g, err := topo.Backbone(int64(links), links)
	if err != nil {
		b.Fatal(err)
	}
	paths, err := topo.BackbonePaths(g, links/10, int64(links))
	if err != nil {
		b.Fatal(err)
	}
	sys, err := tomo.NewSystem(g, paths)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// reportQuantiles attaches per-iteration p50/p95 latency to the
// benchmark output — the tail is what a churn campaign feels at each
// epoch boundary, and ns/op alone hides it.
func reportQuantiles(b *testing.B, durs []time.Duration) {
	b.Helper()
	if len(durs) == 0 {
		return
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	q := func(f float64) float64 {
		return float64(durs[int(f*float64(len(durs)-1))])
	}
	b.ReportMetric(q(0.50), "p50-ns")
	b.ReportMetric(q(0.95), "p95-ns")
}

// BenchmarkChurnReregister measures the structural-churn epoch route:
// evict the topology and register it again (build system state, digest,
// adopt the solver, build the detector). The solver cache is warmed
// before the timer — eviction deliberately keeps the digest-keyed
// factorization, so every re-registration after the first is warm,
// which is exactly the steady state a flapping network puts the daemon
// in.
func BenchmarkChurnReregister(b *testing.B) {
	for _, links := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("links=%d", links), func(b *testing.B) {
			sys := churnBenchSystem(b, links)
			reg := NewRegistry(NewMetrics())
			if _, err := reg.RegisterSystem("churn", sys, 0); err != nil {
				b.Fatal(err)
			}
			if _, err := reg.Evict("churn"); err != nil {
				b.Fatal(err)
			}
			durs := make([]time.Duration, 0, b.N)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if _, err := reg.RegisterSystem("churn", sys, 0); err != nil {
					b.Fatal(err)
				}
				if _, err := reg.Evict("churn"); err != nil {
					b.Fatal(err)
				}
				durs = append(durs, time.Since(t0))
			}
			b.StopTimer()
			reportQuantiles(b, durs)
		})
	}
}

// BenchmarkChurnMutate measures the flap-only epoch route: one session
// paths round trip (AddPath of the rerouted walk, RemovePath of the
// old index) against the same warm system the re-registration bench
// uses. At 1k links this is the dense rank-1 update/downdate pair; at
// 10k it is the sparse append + coverage-screened rebuild. Note the
// comparison against BenchmarkChurnReregister is asymmetric: a flap
// changes the routing matrix, so its digest misses the solver cache and
// the re-registration alternative would pay a cold factorization — the
// incremental derivation here is what keeps flap-only churn off that
// path, while the warm re-register number is the recover-to-known-
// config case.
func BenchmarkChurnMutate(b *testing.B) {
	for _, links := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("links=%d", links), func(b *testing.B) {
			sys := churnBenchSystem(b, links)
			if _, err := sys.Solver(); err != nil {
				b.Fatal(err)
			}
			flap := sys.Paths()[sys.NumPaths()-1]
			durs := make([]time.Duration, 0, b.N)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				ns, _, err := sys.AddPath(flap)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := ns.RemovePath(ns.NumPaths() - 2); err != nil {
					b.Fatal(err)
				}
				durs = append(durs, time.Since(t0))
			}
			b.StopTimer()
			reportQuantiles(b, durs)
		})
	}
}
