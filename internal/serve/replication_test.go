package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/store"
)

// replicationPair opens a primary server journaling to a store and a
// follower server tailing into its own store, both over real HTTP.
func replicationPair(t *testing.T) (primary, follower *Server, pts, fts *httptest.Server) {
	t.Helper()
	pst, err := store.Open(context.Background(), t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pst.Close() })
	primary = New(Config{})
	primary.Registry().AttachStore(pst)
	primary.EnableReplication(pst, RolePrimary)
	pts = httptest.NewServer(primary.Handler())
	t.Cleanup(pts.Close)

	fst, err := store.Open(context.Background(), t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fst.Close() })
	follower = New(Config{})
	follower.EnableReplication(fst, RoleFollower)
	fts = httptest.NewServer(follower.Handler())
	t.Cleanup(fts.Close)
	return primary, follower, pts, fts
}

// pullApply runs one replication pull from the primary into the
// follower — the tailer's loop body, driven synchronously for tests.
func pullApply(t *testing.T, pts *httptest.Server, follower *Server) {
	t.Helper()
	st := follower.ReplicationStore()
	resp, raw := get(t, pts, "/v1/replication/wal?from="+uitoa(st.LastSeq()))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wal pull: %d %s", resp.StatusCode, raw)
	}
	var batch ReplicationBatch
	decodeInto(t, raw, &batch)
	if batch.Resync {
		if err := st.InstallSnapshot(batch.Docs, batch.ResyncSeq); err != nil {
			t.Fatal(err)
		}
		if err := follower.Registry().ResetReplicated(context.Background(), batch.Docs); err != nil {
			t.Fatal(err)
		}
	} else {
		for _, wr := range batch.Records {
			rec, err := wr.StoreRecord()
			if err != nil {
				t.Fatal(err)
			}
			if err := st.ApplyRecord(rec); err != nil {
				t.Fatal(err)
			}
			if err := follower.Registry().ApplyReplicated(context.Background(), rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	follower.SetReplicationLag(batch.LastSeq - st.LastSeq())
}

func uitoa(v uint64) string { return strconv.FormatUint(v, 10) }

func TestReplicationShipsRegistryOverHTTP(t *testing.T) {
	_, follower, pts, fts := replicationPair(t)
	edges, paths, _, sys := fig1Wire(t)

	if resp, raw := postJSON(t, pts, "/v1/topologies", TopologyRequest{Name: "fig1", Edges: edges, Paths: paths}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register on primary: %d %s", resp.StatusCode, raw)
	}
	pullApply(t, pts, follower)

	// The follower serves byte-identical estimates for the replicated
	// topology: same registry entry, same digest, same solver result.
	x := make([]float64, sys.NumLinks())
	for i := range x {
		x[i] = 7
	}
	y, err := sys.Measure(x)
	if err != nil {
		t.Fatal(err)
	}
	var fromPrimary, fromFollower EstimateResponse
	resp, raw := postJSON(t, pts, "/v1/estimate", RoundsRequest{Topology: "fig1", Y: y})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate on primary: %d %s", resp.StatusCode, raw)
	}
	decodeInto(t, raw, &fromPrimary)
	resp, raw = postJSON(t, fts, "/v1/estimate", RoundsRequest{Topology: "fig1", Y: y})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate on follower: %d %s", resp.StatusCode, raw)
	}
	decodeInto(t, raw, &fromFollower)
	if len(fromFollower.Results) != 1 || len(fromPrimary.Results) != 1 {
		t.Fatal("missing estimate results")
	}
	for i := range fromPrimary.Results[0].XHat {
		if fromPrimary.Results[0].XHat[i] != fromFollower.Results[0].XHat[i] {
			t.Fatalf("xhat[%d] differs: primary %g, follower %g",
				i, fromPrimary.Results[0].XHat[i], fromFollower.Results[0].XHat[i])
		}
	}

	// Eviction replicates too, and the follower's forensics unbind with
	// it (the same no-leak contract as a local evict).
	if resp, _ := postDelete(t, pts, "/v1/topologies/fig1"); resp.StatusCode != http.StatusOK {
		t.Fatal("evict on primary failed")
	}
	pullApply(t, pts, follower)
	if _, err := follower.Registry().Get("fig1"); err == nil {
		t.Fatal("follower still serves the evicted topology")
	}
	if follower.Forensics().Len() != 0 {
		t.Fatal("follower observatory leaked across replicated evict")
	}
}

func TestFollowerRejectsWritesWith421(t *testing.T) {
	_, _, _, fts := replicationPair(t)
	edges, paths, _, _ := fig1Wire(t)

	resp, raw := postJSON(t, fts, "/v1/topologies", TopologyRequest{Name: "fig1", Edges: edges, Paths: paths})
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("register on follower: %d %s, want 421", resp.StatusCode, raw)
	}
	req, _ := http.NewRequest(http.MethodDelete, fts.URL+"/v1/topologies/fig1", nil)
	hr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("evict on follower: %d, want 421", hr.StatusCode)
	}
}

func TestHealthzReportsRoleAndLag(t *testing.T) {
	_, follower, pts, fts := replicationPair(t)
	edges, paths, _, _ := fig1Wire(t)
	if resp, raw := postJSON(t, pts, "/v1/topologies", TopologyRequest{Name: "fig1", Edges: edges, Paths: paths}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, raw)
	}

	var hz HealthResponse
	_, raw := get(t, pts, "/healthz")
	decodeInto(t, raw, &hz)
	if hz.Role != "primary" || hz.AppliedSeq != 1 || hz.ReplicationLag != nil {
		t.Fatalf("primary healthz: %+v", hz)
	}

	// Before the pull the follower trails; lag is whatever its tailer
	// last recorded. After the pull it reports caught-up.
	pullApply(t, pts, follower)
	_, raw = get(t, fts, "/healthz")
	hz = HealthResponse{}
	decodeInto(t, raw, &hz)
	if hz.Role != "follower" || hz.AppliedSeq != 1 {
		t.Fatalf("follower healthz: %+v", hz)
	}
	if hz.ReplicationLag == nil || *hz.ReplicationLag != 0 {
		t.Fatalf("follower lag: %+v", hz.ReplicationLag)
	}
}

// The legacy healthz contract: a standalone daemon's body carries no
// replication fields at all (old load balancers parse it unchanged).
func TestHealthzLegacyBodyWithoutReplication(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	_, raw := get(t, ts, "/healthz")
	for _, forbidden := range []string{"role", "appliedSeq", "replicationLag"} {
		if strings.Contains(string(raw), forbidden) {
			t.Fatalf("standalone healthz leaks %q: %s", forbidden, raw)
		}
	}
	// And the replication endpoints 404 rather than act.
	if resp, _ := get(t, ts, "/v1/replication/wal"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("wal endpoint on standalone: %d, want 404", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/v1/replication/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("promote on standalone: %d, want 404", resp.StatusCode)
	}
}

func TestPromoteFlipsFollowerToPrimary(t *testing.T) {
	_, follower, pts, fts := replicationPair(t)
	edges, paths, _, _ := fig1Wire(t)
	if resp, raw := postJSON(t, pts, "/v1/topologies", TopologyRequest{Name: "fig1", Edges: edges, Paths: paths}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, raw)
	}
	pullApply(t, pts, follower)

	resp, err := http.Post(fts.URL+"/v1/replication/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var pr PromoteResponse
	rawBody := make([]byte, 1<<12)
	n, _ := resp.Body.Read(rawBody)
	resp.Body.Close()
	decodeInto(t, rawBody[:n], &pr)
	if pr.Role != "primary" || pr.AppliedSeq != 1 {
		t.Fatalf("promote response: %+v", pr)
	}
	if follower.Role() != RolePrimary {
		t.Fatalf("role after promote: %v", follower.Role())
	}

	// The promoted shard accepts writes and journals them durably: a
	// fresh registration lands in its own WAL with the next sequence.
	if resp, raw := postJSON(t, fts, "/v1/topologies", TopologyRequest{Name: "fig2", Edges: edges, Paths: paths}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register after promote: %d %s", resp.StatusCode, raw)
	}
	if got := follower.ReplicationStore().LastSeq(); got != 2 {
		t.Fatalf("promoted WAL seq %d, want 2", got)
	}
	// Promote is idempotent.
	if got := follower.Promote(); got != RolePrimary {
		t.Fatalf("re-promote: %v", got)
	}
}

// A replicated register must reproduce the primary's digest exactly;
// a tampered doc fails the apply instead of serving silently different
// estimates.
func TestApplyReplicatedVerifiesDigest(t *testing.T) {
	edges, paths, _, _ := fig1Wire(t)
	srv := New(Config{})
	doc := store.TopologyDoc{Name: "x", Edges: edges, Paths: paths, Digest: "sha256:not-the-real-digest"}
	err := srv.Registry().ApplyReplicated(context.Background(), store.Record{Op: store.OpRegister, Seq: 1, Doc: doc})
	if err == nil {
		t.Fatal("digest mismatch accepted")
	}
	if _, gerr := srv.Registry().Get("x"); gerr == nil {
		t.Fatal("mismatched topology left registered")
	}
}
