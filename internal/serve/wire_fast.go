package serve

import (
	"math"
	"strconv"
)

// Fast NDJSON wire path for round streams.
//
// encoding/json's reflection walk costs ~250ns per float in each
// direction, and a round stream is almost nothing but floats: at 1k
// rounds x 23 paths the reflective codec spends more time on the wire
// format than the solver spends on the estimates. The helpers here
// hand-roll the two hot shapes — StreamRound in, StreamVerdict out —
// and every one degrades to encoding/json on any input it does not
// fully understand, so semantics (including error behaviour on
// malformed lines) are unchanged; only the happy path gets cheaper.
//
// The float formatting replicates encoding/json's ES6-style rules
// exactly ('f' format in [1e-6, 1e21), 'e' elsewhere, with the
// two-digit negative exponent trimmed), so fast-encoded bytes are
// byte-identical to what the reflective encoder would have produced.

// appendJSONFloat appends f the way encoding/json renders a float64.
// ok is false for NaN/Inf, which JSON cannot represent — callers fall
// back to encoding/json to fail the same way it would.
func appendJSONFloat(dst []byte, f float64) (out []byte, ok bool) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return dst, false
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	n := len(dst)
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// encoding/json cleans "e-09" up to "e-9".
		if l := len(dst); l-n >= 4 && dst[l-4] == 'e' && dst[l-3] == '-' && dst[l-2] == '0' {
			dst[l-2] = dst[l-1]
			dst = dst[:l-1]
		}
	}
	return dst, true
}

// fastScan is a minimal JSON scanner over one NDJSON line. It accepts
// only the grammar the fast paths need (objects with simple keys,
// arrays of numbers, booleans); anything richer makes the caller fall
// back to encoding/json.
type fastScan struct {
	b []byte
	i int
}

func (s *fastScan) ws() {
	for s.i < len(s.b) {
		switch s.b[s.i] {
		case ' ', '\t', '\r', '\n':
			s.i++
		default:
			return
		}
	}
}

func (s *fastScan) eat(c byte) bool {
	s.ws()
	if s.i < len(s.b) && s.b[s.i] == c {
		s.i++
		return true
	}
	return false
}

// lit consumes the exact literal (no surrounding whitespace skipped
// beyond the leading run).
func (s *fastScan) lit(l string) bool {
	s.ws()
	if s.i+len(l) > len(s.b) || string(s.b[s.i:s.i+len(l)]) != l {
		return false
	}
	s.i += len(l)
	return true
}

// key reads a simple quoted key (no escapes).
func (s *fastScan) key() ([]byte, bool) {
	if !s.eat('"') {
		return nil, false
	}
	start := s.i
	for s.i < len(s.b) {
		switch s.b[s.i] {
		case '"':
			k := s.b[start:s.i]
			s.i++
			return k, true
		case '\\':
			return nil, false
		default:
			s.i++
		}
	}
	return nil, false
}

// number reads one JSON number. The digit run is validated loosely and
// handed to strconv.ParseFloat, which is correctly rounded — estimates
// computed from a fast-parsed y are bit-identical to the reflective
// path's.
func (s *fastScan) number() (float64, bool) {
	s.ws()
	start := s.i
	if s.i < len(s.b) && s.b[s.i] == '-' {
		s.i++
	}
	if s.i >= len(s.b) || s.b[s.i] < '0' || s.b[s.i] > '9' {
		return 0, false
	}
	for s.i < len(s.b) {
		c := s.b[s.i]
		if (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-' {
			s.i++
			continue
		}
		break
	}
	f, err := strconv.ParseFloat(string(s.b[start:s.i]), 64)
	return f, err == nil
}

// floats reads a JSON array of numbers. An empty array yields a
// non-nil empty slice, matching encoding/json.
func (s *fastScan) floats() ([]float64, bool) {
	if !s.eat('[') {
		return nil, false
	}
	if s.eat(']') {
		return []float64{}, true
	}
	out := make([]float64, 0, 8)
	for {
		f, ok := s.number()
		if !ok {
			return nil, false
		}
		out = append(out, f)
		if s.eat(',') {
			continue
		}
		if s.eat(']') {
			return out, true
		}
		return nil, false
	}
}

func (s *fastScan) boolean() (bool, bool) {
	if s.lit("true") {
		return true, true
	}
	if s.lit("false") {
		return false, true
	}
	return false, false
}

func (s *fastScan) done() bool {
	s.ws()
	return s.i == len(s.b)
}

// parseStreamRound is the fast path for one request line. It reports
// false — leaving sr untouched semantically (the caller re-zeroes it) —
// whenever the line strays from the plain {"y":[...]}/{"rounds":[[...]]}
// shapes, so unusual-but-valid and invalid JSON both land in
// encoding/json and behave exactly as before.
func parseStreamRound(line []byte, sr *StreamRound) bool {
	s := fastScan{b: line}
	if !s.eat('{') {
		return false
	}
	if s.eat('}') {
		return s.done()
	}
	for {
		k, ok := s.key()
		if !ok || !s.eat(':') {
			return false
		}
		switch string(k) {
		case "y":
			ys, ok := s.floats()
			if !ok {
				return false
			}
			sr.Y = ys
		case "rounds":
			if !s.eat('[') {
				return false
			}
			// Reset so a duplicate "rounds" key keeps last-wins
			// semantics, matching encoding/json.
			sr.Rounds = nil
			if s.eat(']') {
				sr.Rounds = [][]float64{}
				break
			}
			for {
				row, ok := s.floats()
				if !ok {
					return false
				}
				sr.Rounds = append(sr.Rounds, row)
				if s.eat(',') {
					continue
				}
				if s.eat(']') {
					break
				}
				return false
			}
		case "packed":
			// base64's alphabet needs no JSON escaping, so the simple
			// no-escape string reader is exact here.
			p, ok := s.key()
			if !ok {
				return false
			}
			sr.Packed = string(p)
		case "xhat":
			v, ok := s.boolean()
			if !ok {
				return false
			}
			sr.XHat = &v
		default:
			return false
		}
		if s.eat(',') {
			continue
		}
		if s.eat('}') {
			return s.done()
		}
		return false
	}
}

// AppendStreamRound appends sr's NDJSON wire form (with trailing
// newline), byte-identical to encoding/json's rendering. ok is false
// when sr needs the reflective encoder (non-finite values); callers
// fall back to json.Encoder then. Exported for streaming clients that
// build request lines in bulk.
func AppendStreamRound(dst []byte, sr *StreamRound) (out []byte, ok bool) {
	dst = append(dst, '{')
	sep := false
	field := func(name string) {
		if sep {
			dst = append(dst, ',')
		}
		sep = true
		dst = append(dst, '"')
		dst = append(dst, name...)
		dst = append(dst, '"', ':')
	}
	if len(sr.Y) > 0 { // omitempty drops empty slices, not just nil
		field("y")
		dst, ok = appendFloats(dst, sr.Y)
		if !ok {
			return dst, false
		}
	}
	if len(sr.Rounds) > 0 {
		field("rounds")
		dst = append(dst, '[')
		for i, row := range sr.Rounds {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst, ok = appendFloats(dst, row)
			if !ok {
				return dst, false
			}
		}
		dst = append(dst, ']')
	}
	if sr.Packed != "" {
		// Emit raw only when the payload stays inside the base64
		// alphabet, which never needs JSON (or HTML) escaping; anything
		// else goes through the reflective encoder.
		for i := 0; i < len(sr.Packed); i++ {
			c := sr.Packed[i]
			if !(c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' || c >= '0' && c <= '9' ||
				c == '+' || c == '/' || c == '=') {
				return dst, false
			}
		}
		field("packed")
		dst = append(dst, '"')
		dst = append(dst, sr.Packed...)
		dst = append(dst, '"')
	}
	if sr.XHat != nil {
		field("xhat")
		dst = strconv.AppendBool(dst, *sr.XHat)
	}
	dst = append(dst, '}', '\n')
	return dst, true
}

func appendFloats(dst []byte, xs []float64) (out []byte, ok bool) {
	dst = append(dst, '[')
	for i, x := range xs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst, ok = appendJSONFloat(dst, x)
		if !ok {
			return dst, false
		}
	}
	return append(dst, ']'), true
}

// appendStreamVerdict appends v's NDJSON line, byte-identical to the
// reflective encoder (xhat omitted when nil, per its omitempty tag).
func appendStreamVerdict(dst []byte, v *StreamVerdict) (out []byte, ok bool) {
	dst = append(dst, `{"round":`...)
	dst = strconv.AppendInt(dst, int64(v.Round), 10)
	dst = append(dst, `,"detected":`...)
	dst = strconv.AppendBool(dst, v.Detected)
	dst = append(dst, `,"residualNorm":`...)
	dst, ok = appendJSONFloat(dst, v.ResidualNorm)
	if !ok {
		return dst, false
	}
	if len(v.XHat) > 0 { // omitempty: empty estimates are dropped like nil
		dst = append(dst, `,"xhat":`...)
		dst, ok = appendFloats(dst, v.XHat)
		if !ok {
			return dst, false
		}
	}
	return append(dst, '}', '\n'), true
}

// ParseStreamVerdict is the client-side fast path for one response
// line. It accepts exactly the key order the server emits (round,
// detected, residualNorm, then optional xhat) and reports false for
// anything else — summary lines, error lines, hand-written JSON — which
// callers then route through a reflective decode. Parsed floats are
// bit-identical to encoding/json's.
func ParseStreamVerdict(line []byte, v *StreamVerdict) bool {
	s := fastScan{b: line}
	if !s.eat('{') || !s.lit(`"round"`) || !s.eat(':') {
		return false
	}
	n, ok := s.number()
	if !ok || n != math.Trunc(n) {
		return false
	}
	v.Round = int(n)
	if !s.eat(',') || !s.lit(`"detected"`) || !s.eat(':') {
		return false
	}
	if v.Detected, ok = s.boolean(); !ok {
		return false
	}
	if !s.eat(',') || !s.lit(`"residualNorm"`) || !s.eat(':') {
		return false
	}
	if v.ResidualNorm, ok = s.number(); !ok {
		return false
	}
	if s.eat(',') {
		if !s.lit(`"xhat"`) || !s.eat(':') {
			return false
		}
		if v.XHat, ok = s.floats(); !ok {
			return false
		}
	}
	return s.eat('}') && s.done()
}
