package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/store"
)

// This file is the daemon's replication surface: role awareness
// (primary vs follower), the WAL-shipping endpoint a follower tails,
// and the promote endpoint failover flips. The cluster package drives
// these; a standalone daemon (RoleNone) never sees any of it and keeps
// its exact pre-cluster behavior — including the legacy /healthz body,
// whose replication fields are omitted when empty.

// ErrFollower means a registry mutation was sent to a follower shard.
// Followers serve reads (estimate, inspect, forensics, sessions) but
// reject writes — the primary's WAL is the single mutation order, and
// a follower write would fork it. Mapped to 421 Misdirected Request so
// a router can distinguish "re-send to the primary" from a client
// error.
var ErrFollower = errors.New("serve: shard is a replication follower")

// Role is a shard's replication role.
type Role int32

const (
	// RoleNone is a standalone daemon: no replication machinery at all.
	RoleNone Role = iota
	// RolePrimary accepts writes, journals them, and serves the WAL to
	// tailing followers.
	RolePrimary
	// RoleFollower applies shipped WAL records and rejects direct
	// registry mutations until promoted.
	RoleFollower
)

// String renders the role as it appears in /healthz.
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleFollower:
		return "follower"
	}
	return "standalone"
}

// EnableReplication puts the server into a replication role backed by
// st — the store whose WAL is shipped (primary) or mirrored (follower).
// Call once, before serving. A primary should also AttachStore the same
// store on the registry (the daemon's existing warm-start sequence); a
// follower must NOT, because its store is written by the replication
// tailer, not by handlers — Promote wires the registry to the store at
// failover time.
//
// Registers the replication gauge family on the server's metrics:
//
//	tomographyd_replication_role         0 standalone, 1 primary, 2 follower
//	tomographyd_replication_applied_seq  last WAL sequence applied locally
//	tomographyd_replication_lag          records behind the primary (followers)
func (s *Server) EnableReplication(st *store.Store, role Role) {
	if st == nil {
		panic("serve: EnableReplication with a nil store")
	}
	s.replStore = st
	s.role.Store(int32(role))
	reg := s.metrics.Registry()
	reg.GaugeFunc("tomographyd_replication_role",
		"Replication role: 0 standalone, 1 primary, 2 follower.",
		func() float64 { return float64(s.role.Load()) })
	reg.GaugeFunc("tomographyd_replication_applied_seq",
		"Last WAL sequence applied on this shard.",
		func() float64 { return float64(st.LastSeq()) })
	reg.GaugeFunc("tomographyd_replication_lag",
		"WAL records this follower is behind its primary (0 on a primary).",
		func() float64 { return float64(s.replLag.Load()) })
}

// Role returns the server's replication role.
func (s *Server) Role() Role { return Role(s.role.Load()) }

// ReplicationStore returns the store backing replication (nil for a
// standalone server).
func (s *Server) ReplicationStore() *store.Store { return s.replStore }

// SetReplicationLag records how many WAL records this follower is
// behind its primary — the tailer updates it after every pull, and
// /healthz plus the lag gauge report it.
func (s *Server) SetReplicationLag(lag uint64) { s.replLag.Store(lag) }

// ReplicationLag returns the last recorded replication lag.
func (s *Server) ReplicationLag() uint64 { return s.replLag.Load() }

// Promote flips a follower to primary: from this call on the shard
// accepts registry mutations and journals them to the store it was
// tailing into. The registry is attached to the store here — not
// before — so the mutation journal stays single-writer (tailer until
// promote, handlers after). Promoting a primary or standalone server
// is a no-op reporting the current role.
func (s *Server) Promote() Role {
	if !s.role.CompareAndSwap(int32(RoleFollower), int32(RolePrimary)) {
		return s.Role()
	}
	s.reg.AttachStore(s.replStore)
	s.replLag.Store(0)
	s.metrics.Promotions.Add(1)
	s.log.Info("shard promoted to primary", "applied_seq", s.replStore.LastSeq())
	return RolePrimary
}

// rejectFollower answers a registry mutation with 421 when this shard
// is a follower. Returns true when the request was rejected.
func (s *Server) rejectFollower(w http.ResponseWriter) bool {
	if s.Role() != RoleFollower {
		return false
	}
	s.fail(w, fmt.Errorf("%w: send writes to the primary", ErrFollower))
	return true
}

// --- Replication wire types ---------------------------------------------

// ReplicationRecord is one shipped WAL record on the wire.
type ReplicationRecord struct {
	// Op is "register" or "evict".
	Op  string `json:"op"`
	Seq uint64 `json:"seq"`
	// Doc is the registered configuration (register only).
	Doc *store.TopologyDoc `json:"doc,omitempty"`
	// Name is the evicted topology (evict only).
	Name string `json:"name,omitempty"`
}

// ReplicationBatch is the body of GET /v1/replication/wal: either the
// incremental records after the follower's cursor, or (resync) the full
// state when compaction folded the requested tail away.
type ReplicationBatch struct {
	Resync    bool                `json:"resync,omitempty"`
	Docs      []store.TopologyDoc `json:"docs,omitempty"`
	ResyncSeq uint64              `json:"resyncSeq,omitempty"`
	Records   []ReplicationRecord `json:"records,omitempty"`
	LastSeq   uint64              `json:"lastSeq"`
}

// PromoteResponse is the body of POST /v1/replication/promote.
type PromoteResponse struct {
	Role       string `json:"role"`
	AppliedSeq uint64 `json:"appliedSeq"`
}

// wireRecord converts a store record to its wire form.
func wireRecord(rec store.Record) ReplicationRecord {
	out := ReplicationRecord{Op: rec.Op.String(), Seq: rec.Seq}
	switch rec.Op {
	case store.OpRegister:
		doc := rec.Doc
		out.Doc = &doc
	case store.OpEvict:
		out.Name = rec.Name
	}
	return out
}

// StoreRecord converts a wire record back to a store record, validating
// the op/payload pairing.
func (r ReplicationRecord) StoreRecord() (store.Record, error) {
	switch r.Op {
	case "register":
		if r.Doc == nil {
			return store.Record{}, fmt.Errorf("replication record seq %d: register without doc", r.Seq)
		}
		return store.Record{Op: store.OpRegister, Seq: r.Seq, Doc: *r.Doc}, nil
	case "evict":
		if r.Name == "" {
			return store.Record{}, fmt.Errorf("replication record seq %d: evict without name", r.Seq)
		}
		return store.Record{Op: store.OpEvict, Seq: r.Seq, Name: r.Name}, nil
	}
	return store.Record{}, fmt.Errorf("replication record seq %d: unknown op %q", r.Seq, r.Op)
}

// --- Handlers -----------------------------------------------------------

// handleReplicationWAL serves the journal tail after ?from=N — the pull
// a tailing follower repeats. Like /debug/*, the replication endpoints
// are deliberately uninstrumented: replication traffic is fleet
// plumbing, and counting it in tomographyd_requests_total would break
// the load generator's exact scrape reconciliation. Dedicated counters
// (tomographyd_replication_pulls_total, ..._promotions_total) track it
// instead.
func (s *Server) handleReplicationWAL(w http.ResponseWriter, req *http.Request) {
	if s.replStore == nil {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: "serve: replication not enabled"})
		return
	}
	var from uint64
	if q := req.URL.Query().Get("from"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("serve: bad from %q", q)})
			return
		}
		from = v
	}
	res, err := s.replStore.Since(from)
	if err != nil {
		s.writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	s.metrics.ReplicationPulls.Add(1)
	batch := ReplicationBatch{
		Resync:    res.Resync,
		Docs:      res.Docs,
		ResyncSeq: res.ResyncSeq,
		LastSeq:   res.LastSeq,
	}
	if len(res.Records) > 0 {
		batch.Records = make([]ReplicationRecord, len(res.Records))
		for i, rec := range res.Records {
			batch.Records[i] = wireRecord(rec)
		}
	}
	s.writeJSON(w, http.StatusOK, batch)
}

// handleReplicationPromote flips a follower to primary (idempotent).
func (s *Server) handleReplicationPromote(w http.ResponseWriter, _ *http.Request) {
	if s.replStore == nil {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: "serve: replication not enabled"})
		return
	}
	role := s.Promote()
	s.writeJSON(w, http.StatusOK, PromoteResponse{Role: role.String(), AppliedSeq: s.replStore.LastSeq()})
}

// --- Registry replication apply -----------------------------------------

// ApplyReplicated folds one shipped WAL record into the registry
// without journaling it (the follower's store already applied the
// record; durability happened before this call, mirroring the
// primary's journal-then-apply order). Register records rebuild the
// system from the persisted wire shape and verify the digest recorded
// by the primary — a shard whose rebuilt routing matrix diverges fails
// loudly instead of serving different estimates than the primary
// acknowledged.
func (r *Registry) ApplyReplicated(ctx context.Context, rec store.Record) error {
	switch rec.Op {
	case store.OpRegister:
		sys, err := buildWireSystem(rec.Doc.Edges, rec.Doc.Paths)
		if err != nil {
			return fmt.Errorf("serve: replicate %q: %w", rec.Doc.Name, err)
		}
		entry, err := r.registerSystem(ctx, rec.Doc.Name, sys, rec.Doc.Alpha, false,
			&wireShape{edges: rec.Doc.Edges, paths: rec.Doc.Paths})
		if err != nil {
			return fmt.Errorf("serve: replicate %q: %w", rec.Doc.Name, err)
		}
		if rec.Doc.Digest != "" && entry.Digest != rec.Doc.Digest {
			r.evictReplicated(rec.Doc.Name)
			return fmt.Errorf("serve: replicate %q: rebuilt digest %s, primary journaled %s",
				rec.Doc.Name, entry.Digest, rec.Doc.Digest)
		}
		return nil
	case store.OpEvict:
		r.evictReplicated(rec.Name)
		return nil
	}
	return fmt.Errorf("serve: replicate: unknown op %v", rec.Op)
}

// evictReplicated removes name without journaling — the replication
// mirror of Evict. Missing names are fine (idempotent): a resync may
// have already removed the entry.
func (r *Registry) evictReplicated(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.entries, name)
	if r.forensics != nil {
		r.forensics.Unbind(name)
	}
}

// ResetReplicated replaces the registry's entire contents with docs —
// the registry side of a snapshot resync. Entries are rebuilt through
// the same digest-verified restore path a warm start uses.
func (r *Registry) ResetReplicated(ctx context.Context, docs []store.TopologyDoc) error {
	r.mu.Lock()
	for name := range r.entries {
		delete(r.entries, name)
		if r.forensics != nil {
			r.forensics.Unbind(name)
		}
	}
	r.mu.Unlock()
	if _, err := r.Restore(ctx, docs); err != nil {
		return fmt.Errorf("serve: replication resync: %w", err)
	}
	return nil
}
