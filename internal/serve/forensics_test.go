package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/forensics"
	"repro/internal/obs"
)

// inspectRounds builds an inspect body: clean measurements from the
// Fig. 1 system with chosen path-0 perturbations per round.
func forensicsRounds(t *testing.T, bumps []float64) ([][]float64, []float64) {
	t.Helper()
	_, _, _, sys := fig1Wire(t)
	x := make([]float64, sys.NumLinks())
	for i := range x {
		x[i] = 10
	}
	clean, err := sys.Measure(x)
	if err != nil {
		t.Fatal(err)
	}
	rounds := make([][]float64, len(bumps))
	for i, b := range bumps {
		y := append([]float64(nil), clean...)
		y[0] += b
		rounds[i] = y
	}
	return rounds, clean
}

func TestForensicsEndpointOverHTTP(t *testing.T) {
	edges, paths, _, _ := fig1Wire(t)
	srv := New(Config{ForensicsExemplars: 3})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, raw := postJSON(t, ts, "/v1/topologies", TopologyRequest{Name: "fig1", Edges: edges, Paths: paths}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, raw)
	}

	// Before any inspected round: the snapshot exists (bound at
	// registration) and is empty.
	resp, raw := get(t, ts, "/v1/topologies/fig1/forensics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forensics: %d %s", resp.StatusCode, raw)
	}
	var snap forensics.Snapshot
	decodeInto(t, raw, &snap)
	if snap.Name != "fig1" || snap.Rounds != 0 || snap.Epoch != 0 || snap.Digest == "" {
		t.Fatalf("fresh snapshot: %+v", snap)
	}

	// Unknown topology: 404.
	if resp, _ := get(t, ts, "/v1/topologies/nope/forensics"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown topology forensics: %d, want 404", resp.StatusCode)
	}

	// Inspect a batch: rounds 0-2 clean-ish, round 3 hot (detected).
	rounds, _ := forensicsRounds(t, []float64{0, 10, 20, 500})
	resp, raw = postJSON(t, ts, "/v1/inspect", RoundsRequest{Topology: "fig1", Rounds: rounds})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inspect: %d %s", resp.StatusCode, raw)
	}
	var ir InspectResponse
	decodeInto(t, raw, &ir)
	if ir.Alarms != 1 {
		t.Fatalf("alarms = %d, want 1 (only the +500 round)", ir.Alarms)
	}

	_, raw = get(t, ts, "/v1/topologies/fig1/forensics")
	decodeInto(t, raw, &snap)
	if snap.Rounds != 4 || snap.Alarms != 1 {
		t.Fatalf("snapshot rounds=%d alarms=%d, want 4/1", snap.Rounds, snap.Alarms)
	}
	if snap.Residual.Count != 4 || snap.Residual.Max <= snap.Residual.Min {
		t.Fatalf("residual stats: %+v", snap.Residual)
	}
	if snap.Residual.P99 < snap.Residual.P50 {
		t.Fatalf("p99 %g < p50 %g", snap.Residual.P99, snap.Residual.P50)
	}
	if len(snap.TopLinks) == 0 {
		t.Fatal("no suspected links after attributed rounds")
	}
	// K=3 exemplars retained, worst first; IDs are X-Request-Id + #round.
	if len(snap.Exemplars) != 3 {
		t.Fatalf("exemplars: %+v, want 3 (ForensicsExemplars)", snap.Exemplars)
	}
	worst := snap.Exemplars[0]
	if !strings.HasSuffix(worst.ID, "#3") || !worst.Detected {
		t.Fatalf("worst exemplar = %+v, want round #3 detected", worst)
	}
	if snap.Exemplars[0].ResidualNorm < snap.Exemplars[1].ResidualNorm {
		t.Fatal("exemplars not sorted worst-first")
	}
	// The exemplar's trace resolves in /debug/traces.
	if worst.TraceID == 0 {
		t.Fatal("worst exemplar has no trace ID")
	}
	_, raw = get(t, ts, "/debug/traces")
	var tr TracesResponse
	decodeInto(t, raw, &tr)
	found := false
	for _, d := range tr.Traces {
		if d.ID == worst.TraceID {
			found = true
			if d.Root.Name != "http.inspect" {
				t.Errorf("exemplar trace root = %q, want http.inspect", d.Root.Name)
			}
		}
	}
	if !found {
		t.Fatalf("exemplar trace %d not served by /debug/traces", worst.TraceID)
	}

	// A client-supplied X-Request-Id is echoed into exemplar IDs.
	body, _ := json.Marshal(RoundsRequest{Topology: "fig1", Y: rounds[3]})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/inspect", bytes.NewReader(body))
	req.Header.Set("X-Request-Id", "client-abc")
	req.Header.Set("Content-Type", "application/json")
	hr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	_, raw = get(t, ts, "/v1/topologies/fig1/forensics")
	decodeInto(t, raw, &snap)
	ids := make([]string, len(snap.Exemplars))
	for i, e := range snap.Exemplars {
		ids[i] = e.ID
	}
	if !strings.Contains(strings.Join(ids, " "), "client-abc#0") {
		t.Fatalf("client request ID not among exemplars: %v", ids)
	}
}

func TestForensicsAlphaOverrideStillFeeds(t *testing.T) {
	edges, paths, _, _ := fig1Wire(t)
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if resp, raw := postJSON(t, ts, "/v1/topologies", TopologyRequest{Name: "fig1", Edges: edges, Paths: paths}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, raw)
	}
	rounds, _ := forensicsRounds(t, []float64{500})
	// Loose alpha: not detected, but the round must still land in the
	// observatory (WithAlpha preserves the observer).
	resp, raw := postJSON(t, ts, "/v1/inspect", RoundsRequest{Topology: "fig1", Y: rounds[0], Alpha: 1e9})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inspect: %d %s", resp.StatusCode, raw)
	}
	var ir InspectResponse
	decodeInto(t, raw, &ir)
	if ir.Alarms != 0 {
		t.Fatalf("alarms = %d under alpha=1e9", ir.Alarms)
	}
	_, raw = get(t, ts, "/v1/topologies/fig1/forensics")
	var snap forensics.Snapshot
	decodeInto(t, raw, &snap)
	if snap.Rounds != 1 || snap.Alarms != 0 {
		t.Fatalf("override round missing from observatory: %+v", snap)
	}
}

// TestForensicsEvictUnbindsObservatory pins the eviction contract: the
// observatory is unbound with the entry (no state leak across
// evict/re-register churn), and a later registration under the same
// name starts fresh at epoch zero rather than inheriting attribution.
func TestForensicsEvictUnbindsObservatory(t *testing.T) {
	edges, paths, _, _ := fig1Wire(t)
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if resp, raw := postJSON(t, ts, "/v1/topologies", TopologyRequest{Name: "fig1", Edges: edges, Paths: paths}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, raw)
	}
	rounds, _ := forensicsRounds(t, []float64{500})
	postJSON(t, ts, "/v1/inspect", RoundsRequest{Topology: "fig1", Y: rounds[0]})

	var snap forensics.Snapshot
	_, raw := get(t, ts, "/v1/topologies/fig1/forensics")
	decodeInto(t, raw, &snap)
	if snap.Rounds != 1 || snap.Epoch != 0 {
		t.Fatalf("pre-churn snapshot: %+v", snap)
	}
	digest0 := snap.Digest
	if srv.Forensics().Len() != 1 {
		t.Fatalf("table len %d before evict, want 1", srv.Forensics().Len())
	}

	// Evict: the observatory goes with the entry. The endpoint 404s and
	// the table drops to empty — nothing left to leak.
	if resp, _ := postDelete(t, ts, "/v1/topologies/fig1"); resp.StatusCode != http.StatusOK {
		t.Fatal("evict failed")
	}
	if resp, _ := get(t, ts, "/v1/topologies/fig1/forensics"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("post-evict forensics status %d, want 404", resp.StatusCode)
	}
	if srv.Forensics().Len() != 0 {
		t.Fatalf("table len %d after evict, want 0 (observatory leaked)", srv.Forensics().Len())
	}

	// Re-register under the same name with one path dropped: a brand-new
	// observatory — epoch zero, zero rounds, the new digest.
	if resp, raw := postJSON(t, ts, "/v1/topologies", TopologyRequest{Name: "fig1", Edges: edges, Paths: paths[:len(paths)-1]}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("re-register: %d %s", resp.StatusCode, raw)
	}
	_, raw = get(t, ts, "/v1/topologies/fig1/forensics")
	decodeInto(t, raw, &snap)
	if snap.Epoch != 0 || snap.Rounds != 0 || snap.Digest == digest0 {
		t.Fatalf("post-churn observatory not fresh: epoch=%d rounds=%d digest same=%t, want 0/0/false",
			snap.Epoch, snap.Rounds, snap.Digest == digest0)
	}

	// Many churn cycles leave exactly one bound observatory.
	for i := 0; i < 5; i++ {
		postDelete(t, ts, "/v1/topologies/fig1")
		if resp, raw := postJSON(t, ts, "/v1/topologies", TopologyRequest{Name: "fig1", Edges: edges, Paths: paths}); resp.StatusCode != http.StatusCreated {
			t.Fatalf("churn cycle %d: %d %s", i, resp.StatusCode, raw)
		}
	}
	if srv.Forensics().Len() != 1 {
		t.Fatalf("table len %d after churn, want 1", srv.Forensics().Len())
	}
}

// TestForensicsEpochBumpsOnLiveRebind pins the epoch semantics that
// remain after the eviction fix: a digest change on a *live* binding —
// a streaming session whose path set mutated — bumps the epoch and
// resets attribution (exercised end to end in
// TestForensicsStreamingSessionFeeds); identical rebinds never bump.
func TestForensicsEpochBumpsOnLiveRebind(t *testing.T) {
	edges, paths, _, _ := fig1Wire(t)
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if resp, raw := postJSON(t, ts, "/v1/topologies", TopologyRequest{Name: "fig1", Edges: edges, Paths: paths}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, raw)
	}
	o, ok := srv.Forensics().Get("fig1")
	if !ok {
		t.Fatal("no observatory bound at registration")
	}
	snap := o.Snapshot()
	if snap.Epoch != 0 {
		t.Fatalf("fresh epoch %d", snap.Epoch)
	}
	// Same-digest rebind (what every stream batch does): no bump.
	srv.Forensics().Bind("fig1", snap.Digest, nil, 0)
	if got := o.Snapshot().Epoch; got != 0 {
		t.Fatalf("identical rebind bumped epoch to %d", got)
	}
	// Digest change on the live binding: bump + reset.
	srv.Forensics().Bind("fig1", "sha256:different", nil, 0)
	if got := o.Snapshot().Epoch; got != 1 {
		t.Fatalf("digest-changing rebind epoch %d, want 1", got)
	}
}

func TestForensicsStreamingSessionFeeds(t *testing.T) {
	edges, paths, _, _ := fig1Wire(t)
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if resp, raw := postJSON(t, ts, "/v1/topologies", TopologyRequest{Name: "fig1", Edges: edges, Paths: paths}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, raw)
	}
	resp, raw := postJSON(t, ts, "/v1/sessions", SessionRequest{Topology: "fig1"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("session: %d %s", resp.StatusCode, raw)
	}
	var sess SessionResponse
	decodeInto(t, raw, &sess)

	rounds, _ := forensicsRounds(t, []float64{0, 500, 20})
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, y := range rounds {
		if err := enc.Encode(StreamRound{Y: y}); err != nil {
			t.Fatal(err)
		}
	}
	req, _ := http.NewRequest("POST", ts.URL+"/v1/sessions/"+sess.Session+"/rounds", &body)
	req.Header.Set("X-Request-Id", "stream-0001-00")
	hr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(hr.Body)
	var lines int
	for sc.Scan() {
		lines++
	}
	hr.Body.Close()
	if lines != len(rounds)+1 { // verdicts + summary
		t.Fatalf("stream returned %d lines, want %d", lines, len(rounds)+1)
	}

	var snap forensics.Snapshot
	_, raw = get(t, ts, "/v1/topologies/fig1/forensics")
	decodeInto(t, raw, &snap)
	if snap.Rounds != 3 || snap.Alarms != 1 {
		t.Fatalf("stream rounds missing: %+v", snap)
	}
	// Exemplar IDs carry the stream request ID + running round index.
	foundHot := false
	for _, e := range snap.Exemplars {
		if e.ID == "stream-0001-00#1" && e.Detected {
			foundHot = true
		}
	}
	if !foundHot {
		t.Fatalf("hot stream round not an exemplar: %+v", snap.Exemplars)
	}
	if len(snap.TopLinks) == 0 {
		t.Fatal("streamed rounds produced no link attribution")
	}

	// A session path mutation changes the session digest → next batch
	// binds a new regime: epoch bump, fresh attribution.
	if resp, raw := postJSON(t, ts, "/v1/sessions/"+sess.Session+"/paths", SessionPathsRequest{Remove: intp(0)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("path remove: %d %s", resp.StatusCode, raw)
	}
	shorter, _ := forensicsRounds(t, []float64{0})
	y2 := shorter[0][1:] // one fewer path after remove(0)
	var body2 bytes.Buffer
	_ = json.NewEncoder(&body2).Encode(StreamRound{Y: y2})
	hr2, err := http.Post(ts.URL+"/v1/sessions/"+sess.Session+"/rounds", "application/x-ndjson", &body2)
	if err != nil {
		t.Fatal(err)
	}
	sc2 := bufio.NewScanner(hr2.Body)
	for sc2.Scan() {
	}
	hr2.Body.Close()
	_, raw = get(t, ts, "/v1/topologies/fig1/forensics")
	decodeInto(t, raw, &snap)
	if snap.Epoch != 1 || snap.Rounds != 1 {
		t.Fatalf("post-mutation snapshot: epoch=%d rounds=%d, want 1/1", snap.Epoch, snap.Rounds)
	}
}

func intp(i int) *int { return &i }

// postDelete issues a DELETE and returns the response.
func postDelete(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestForensicsMetricsFamilies asserts the residual/suspicion gauge
// families appear on a live scrape, refresh at collect time, and keep
// the exposition lint-clean.
func TestForensicsMetricsFamilies(t *testing.T) {
	edges, paths, _, _ := fig1Wire(t)
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if resp, raw := postJSON(t, ts, "/v1/topologies", TopologyRequest{Name: "fig1", Edges: edges, Paths: paths}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, raw)
	}
	rounds, _ := forensicsRounds(t, []float64{0, 500})
	postJSON(t, ts, "/v1/inspect", RoundsRequest{Topology: "fig1", Rounds: rounds})

	_, raw := get(t, ts, "/metrics")
	text := string(raw)
	if errs := obs.Lint(text); errs != nil {
		t.Errorf("lint with forensic families: %v", errs)
	}
	for _, want := range []string{
		`tomographyd_residual_rounds{topology="fig1"} 2`,
		`tomographyd_residual_p50{topology="fig1"}`,
		`tomographyd_residual_p95{topology="fig1"}`,
		`tomographyd_residual_p99{topology="fig1"}`,
		`tomographyd_residual_ewma{topology="fig1"}`,
		`tomographyd_suspicion_top_link{topology="fig1"}`,
		`tomographyd_suspicion_top_score{topology="fig1"}`,
		`tomographyd_suspicion_alarm_bursts{topology="fig1"}`,
		`tomographyd_suspicion_epoch{topology="fig1"} 0`,
		`tomographyd_requests_total{route="forensics"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The suspicion gauges must not report a placeholder top link.
	if strings.Contains(text, `tomographyd_suspicion_top_link{topology="fig1"} -1`) {
		t.Error("top link is -1 despite attributed rounds")
	}

	// Collect-time refresh: more rounds move the gauges on the next
	// scrape without any explicit update call.
	postJSON(t, ts, "/v1/inspect", RoundsRequest{Topology: "fig1", Rounds: rounds})
	_, raw = get(t, ts, "/metrics")
	if !strings.Contains(string(raw), `tomographyd_residual_rounds{topology="fig1"} 4`) {
		t.Error("rounds gauge did not refresh at collect time")
	}
}

// BenchmarkMetricsRender measures a full /metrics render with forensic
// families live (the BENCH_obs.json metrics-render number).
func BenchmarkMetricsRender(b *testing.B) {
	edges, paths, _, sys := fig1Wire(b)
	srv := New(Config{})
	entry, err := srv.Registry().Register("fig1", edges, paths, 0)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, sys.NumLinks())
	for i := range x {
		x[i] = 10
	}
	y, err := entry.Sys.Measure(x)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := entry.Det.Inspect(y); err != nil {
			b.Fatal(err)
		}
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		srv.Metrics().WritePrometheus(&buf)
	}
	if buf.Len() == 0 {
		b.Fatal("empty render")
	}
	_ = fmt.Sprintf("%d", buf.Len())
}

// BenchmarkStreamRoundForensics measures the streaming-round hot path
// through the full HTTP stack — NDJSON decode, batched estimate,
// residual, verdict encode — with the forensic observatory enabled vs
// disabled. The acceptance budget is < 5% regression for "on" over
// "off"; bench.sh records both arms in BENCH_obs.json.
func BenchmarkStreamRoundForensics(b *testing.B) {
	edges, paths, _, sys := fig1Wire(b)
	x := make([]float64, sys.NumLinks())
	for i := range x {
		x[i] = 10
	}
	clean, err := sys.Measure(x)
	if err != nil {
		b.Fatal(err)
	}
	const batch = 64
	var body []byte
	{
		rounds := make([][]float64, batch)
		for i := range rounds {
			rounds[i] = clean
		}
		raw, ok := AppendStreamRound(nil, &StreamRound{Rounds: rounds})
		if !ok {
			b.Fatal("encode stream line")
		}
		body = raw
	}
	for _, arm := range []struct {
		name    string
		disable bool
	}{{"on", false}, {"off", true}} {
		b.Run("forensics="+arm.name, func(b *testing.B) {
			srv := New(Config{RequestTimeout: -1, Workers: 4, DisableForensics: arm.disable})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			if resp, raw := postJSON(b, ts, "/v1/topologies", TopologyRequest{Name: "fig1", Edges: edges, Paths: paths}); resp.StatusCode != http.StatusCreated {
				b.Fatalf("register: %d %s", resp.StatusCode, raw)
			}
			resp, raw := postJSON(b, ts, "/v1/sessions", SessionRequest{Topology: "fig1"})
			if resp.StatusCode != http.StatusCreated {
				b.Fatalf("session: %d %s", resp.StatusCode, raw)
			}
			var sess SessionResponse
			decodeInto(b, raw, &sess)
			url := ts.URL + "/v1/sessions/" + sess.Session + "/rounds"
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hr, err := http.Post(url, "application/x-ndjson", bytes.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := io.Copy(io.Discard, hr.Body); err != nil {
					b.Fatal(err)
				}
				hr.Body.Close()
				if hr.StatusCode != http.StatusOK {
					b.Fatalf("stream status %d", hr.StatusCode)
				}
			}
			b.StopTimer()
			// ns/op is per stream request of `batch` rounds; report the
			// per-round figure too so the BENCH_obs.json arms compare at
			// round granularity.
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/round")
		})
	}
}

// TestForensicsDisabled pins the opt-out: no observatory is bound, the
// endpoint answers 404, and inspect/stream traffic still flows.
func TestForensicsDisabled(t *testing.T) {
	edges, paths, _, _ := fig1Wire(t)
	srv := New(Config{DisableForensics: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if resp, raw := postJSON(t, ts, "/v1/topologies", TopologyRequest{Name: "fig1", Edges: edges, Paths: paths}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, raw)
	}
	rounds, _ := forensicsRounds(t, []float64{500})
	resp, raw := postJSON(t, ts, "/v1/inspect", RoundsRequest{Topology: "fig1", Y: rounds[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inspect with forensics disabled: %d %s", resp.StatusCode, raw)
	}
	if resp, _ := get(t, ts, "/v1/topologies/fig1/forensics"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("forensics endpoint status %d with forensics disabled, want 404", resp.StatusCode)
	}
	if srv.Forensics() != nil {
		t.Error("Forensics() non-nil when disabled")
	}
	// Streaming still works without an observatory.
	resp, raw = postJSON(t, ts, "/v1/sessions", SessionRequest{Topology: "fig1"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("session: %d %s", resp.StatusCode, raw)
	}
	var sess SessionResponse
	decodeInto(t, raw, &sess)
	var body bytes.Buffer
	_ = json.NewEncoder(&body).Encode(StreamRound{Y: rounds[0]})
	hr, err := http.Post(ts.URL+"/v1/sessions/"+sess.Session+"/rounds", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	raw2, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK || !bytes.Contains(raw2, []byte(`"done"`)) {
		t.Fatalf("stream with forensics disabled: %d %s", hr.StatusCode, raw2)
	}
	// The residual/suspicion families stay off /metrics entirely.
	_, mraw := get(t, ts, "/metrics")
	if strings.Contains(string(mraw), "tomographyd_residual_") {
		t.Error("residual metric family present with forensics disabled")
	}
}
