package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/la"
	"repro/internal/obs"
	"repro/internal/tomo"
)

// streamLine is the decoded union of the three NDJSON response line
// shapes (verdict, error, summary), discriminated by field presence.
type streamLine struct {
	verdict *StreamVerdict
	errLine *StreamError
	summary *StreamSummary
}

func parseStreamLine(t testing.TB, raw []byte) streamLine {
	t.Helper()
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(raw, &probe); err != nil {
		t.Fatalf("bad NDJSON line %s: %v", raw, err)
	}
	switch {
	case probe["done"] != nil:
		var s StreamSummary
		decodeInto(t, raw, &s)
		return streamLine{summary: &s}
	case probe["error"] != nil:
		var e StreamError
		decodeInto(t, raw, &e)
		return streamLine{errLine: &e}
	default:
		var v StreamVerdict
		decodeInto(t, raw, &v)
		return streamLine{verdict: &v}
	}
}

// postStream sends body as one NDJSON request to the session's rounds
// endpoint and parses the full NDJSON response.
func postStream(t testing.TB, ts *httptest.Server, id string, body string) (int, []StreamVerdict, *StreamError, *StreamSummary) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sessions/"+id+"/rounds", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil, nil, nil
	}
	var (
		verdicts []StreamVerdict
		errLine  *StreamError
		summary  *StreamSummary
	)
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		l := parseStreamLine(t, line)
		switch {
		case l.verdict != nil:
			verdicts = append(verdicts, *l.verdict)
		case l.errLine != nil:
			errLine = l.errLine
		case l.summary != nil:
			summary = l.summary
		}
	}
	return resp.StatusCode, verdicts, errLine, summary
}

func roundsBody(t testing.TB, lines ...StreamRound) string {
	t.Helper()
	var b strings.Builder
	enc := json.NewEncoder(&b)
	for _, l := range lines {
		if err := enc.Encode(l); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

// sessionFixture registers fig1 and opens one session against it.
func sessionFixture(t *testing.T, srv *Server, ts *httptest.Server) (SessionResponse, *tomo.System) {
	t.Helper()
	edges, paths, _, sys := fig1Wire(t)
	resp, raw := postJSON(t, ts, "/v1/topologies", TopologyRequest{Name: "fig1", Edges: edges, Paths: paths})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, raw)
	}
	resp, raw = postJSON(t, ts, "/v1/sessions", SessionRequest{Topology: "fig1"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("session create: %d %s", resp.StatusCode, raw)
	}
	var sr SessionResponse
	decodeInto(t, raw, &sr)
	if sr.Digest != sys.Digest() || sr.NumLinks != 10 || sr.NumPaths != 23 {
		t.Fatalf("unexpected session: %+v", sr)
	}
	return sr, sys
}

func measureRounds(t testing.TB, sys *tomo.System, seed int64, n int) [][]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for r := range out {
		x := make(la.Vector, sys.NumLinks())
		for i := range x {
			x[i] = 1 + rng.Float64()*19
		}
		y, err := sys.Measure(x)
		if err != nil {
			t.Fatal(err)
		}
		out[r] = y
	}
	return out
}

func TestSessionStreamLifecycle(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sr, sys := sessionFixture(t, srv, ts)

	rounds := measureRounds(t, sys, 11, 6)
	// Round 3 is scapegoated: a gross inconsistency the least-squares
	// inversion cannot explain, so Eq. 23 must fire.
	rounds[3][0] += 20000
	rounds[3][5] += 20000

	body := roundsBody(t,
		StreamRound{Y: rounds[0]},
		StreamRound{Rounds: rounds[1:4]},
		StreamRound{Rounds: rounds[4:]},
	)
	status, verdicts, errLine, summary := postStream(t, ts, sr.Session, body)
	if status != http.StatusOK || errLine != nil {
		t.Fatalf("stream: status=%d err=%+v", status, errLine)
	}
	if len(verdicts) != 6 || summary == nil || !summary.Done || summary.Rounds != 6 {
		t.Fatalf("got %d verdicts, summary %+v", len(verdicts), summary)
	}
	wantAlarms := 0
	for i, v := range verdicts {
		if v.Round != i {
			t.Errorf("verdict %d has round index %d", i, v.Round)
		}
		xhat, err := sys.Estimate(rounds[i])
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Residual(xhat, rounds[i])
		if err != nil {
			t.Fatal(err)
		}
		rn := res.Norm1()
		if math.Abs(v.ResidualNorm-rn) > 1e-9*(1+rn) {
			t.Errorf("round %d residual %g, want %g", i, v.ResidualNorm, rn)
		}
		want := rn > sr.Alpha
		if v.Detected != want {
			t.Errorf("round %d detected=%v, want %v (rn=%g alpha=%g)", i, v.Detected, want, rn, sr.Alpha)
		}
		if want {
			wantAlarms++
		}
		for j := range xhat {
			if math.Abs(v.XHat[j]-xhat[j]) > 1e-9*(1+math.Abs(xhat[j])) {
				t.Errorf("round %d xhat[%d] = %g, want %g", i, j, v.XHat[j], xhat[j])
				break
			}
		}
	}
	if wantAlarms == 0 {
		t.Fatal("scapegoated round did not trip the local detector; test is vacuous")
	}
	if summary.Alarms != wantAlarms {
		t.Errorf("summary alarms = %d, want %d", summary.Alarms, wantAlarms)
	}

	// Streamed verdicts must agree exactly with the one-shot inspect API.
	resp, raw := postJSON(t, ts, "/v1/inspect", RoundsRequest{Topology: "fig1", Rounds: rounds})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inspect: %d %s", resp.StatusCode, raw)
	}
	var ir InspectResponse
	decodeInto(t, raw, &ir)
	for i, rep := range ir.Reports {
		if rep.Detected != verdicts[i].Detected || rep.ResidualNorm != verdicts[i].ResidualNorm {
			t.Errorf("round %d: stream (%v, %g) != inspect (%v, %g)",
				i, verdicts[i].Detected, verdicts[i].ResidualNorm, rep.Detected, rep.ResidualNorm)
		}
	}

	// Status reflects the accumulated stream.
	resp, raw = get(t, ts, "/v1/sessions/"+sr.Session)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d %s", resp.StatusCode, raw)
	}
	var st SessionStatusResponse
	decodeInto(t, raw, &st)
	if st.Rounds != 6 || st.Alarms != int64(wantAlarms) || st.NumPaths != 23 {
		t.Fatalf("status %+v, want 6 rounds %d alarms", st, wantAlarms)
	}

	// Close returns the totals; the ID dangles afterwards.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+sr.Session, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var cr SessionCloseResponse
	raw, _ = io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d %s", dresp.StatusCode, raw)
	}
	decodeInto(t, raw, &cr)
	if cr.Rounds != 6 || cr.Alarms != int64(wantAlarms) {
		t.Fatalf("close %+v", cr)
	}
	if resp, _ := get(t, ts, "/v1/sessions/"+sr.Session); resp.StatusCode != http.StatusNotFound {
		t.Errorf("status after delete = %d, want 404", resp.StatusCode)
	}
	if status, _, _, _ := postStream(t, ts, sr.Session, roundsBody(t, StreamRound{Y: rounds[0]})); status != http.StatusNotFound {
		t.Errorf("rounds after delete = %d, want 404", status)
	}
}

func TestSessionPathMutationOverHTTP(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sr, sys := sessionFixture(t, srv, ts)

	// Duplicate an existing path walk: guaranteed addable and keeps the
	// system identifiable.
	_, paths, _, _ := fig1Wire(t)
	walk := paths[3]

	resp, raw := postJSON(t, ts, "/v1/sessions/"+sr.Session+"/paths", SessionPathsRequest{Add: walk})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add path: %d %s", resp.StatusCode, raw)
	}
	var pr SessionPathsResponse
	decodeInto(t, raw, &pr)
	if pr.NumPaths != 24 || pr.Method != "rank1-update" {
		t.Fatalf("add path response %+v, want 24 paths via rank1-update", pr)
	}
	if pr.Digest == sr.Digest {
		t.Fatal("digest unchanged after path add")
	}

	// Rounds against the mutated session (now 24 measurement paths, so
	// 24-entry measurement vectors) must match a locally mutated system,
	// not the original registration.
	p3 := sys.Paths()[3]
	mutated, _, err := sys.AddPath(p3)
	if err != nil {
		t.Fatal(err)
	}
	if mutated.Digest() != pr.Digest {
		t.Fatalf("server digest %q != local mutated digest %q", pr.Digest, mutated.Digest())
	}
	rounds := measureRounds(t, mutated, 17, 3)
	status, verdicts, errLine, _ := postStream(t, ts, sr.Session, roundsBody(t, StreamRound{Rounds: rounds}))
	if status != http.StatusOK || errLine != nil || len(verdicts) != 3 {
		t.Fatalf("stream after add: status=%d err=%+v n=%d", status, errLine, len(verdicts))
	}
	for i, v := range verdicts {
		xhat, err := mutated.Estimate(rounds[i])
		if err != nil {
			t.Fatal(err)
		}
		for j := range xhat {
			if math.Abs(v.XHat[j]-xhat[j]) > 1e-9*(1+math.Abs(xhat[j])) {
				t.Errorf("round %d xhat[%d] = %g, want mutated-system %g", i, j, v.XHat[j], xhat[j])
				break
			}
		}
	}

	// Removing the appended path restores the original digest.
	last := 23
	resp, raw = postJSON(t, ts, "/v1/sessions/"+sr.Session+"/paths", SessionPathsRequest{Remove: &last})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove path: %d %s", resp.StatusCode, raw)
	}
	decodeInto(t, raw, &pr)
	if pr.NumPaths != 23 || pr.Method != "rank1-downdate" {
		t.Fatalf("remove path response %+v", pr)
	}
	if pr.Digest != sr.Digest {
		t.Fatalf("digest %q after add+remove, want original %q", pr.Digest, sr.Digest)
	}

	// Mutation methods are observable on /metrics.
	mt := metricsText(t, ts)
	for _, want := range []string{
		`tomographyd_path_mutations_total{method="rank1-update"} 1`,
		`tomographyd_path_mutations_total{method="rank1-downdate"} 1`,
	} {
		if !strings.Contains(mt, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestSessionErrors(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sr, sys := sessionFixture(t, srv, ts)
	y := measureRounds(t, sys, 3, 1)[0]

	cases := []struct {
		name string
		do   func() int
		want int
	}{
		{"unknown topology", func() int {
			resp, _ := postJSON(t, ts, "/v1/sessions", SessionRequest{Topology: "nope"})
			return resp.StatusCode
		}, http.StatusNotFound},
		{"negative alpha", func() int {
			resp, _ := postJSON(t, ts, "/v1/sessions", SessionRequest{Topology: "fig1", Alpha: -1})
			return resp.StatusCode
		}, http.StatusBadRequest},
		{"rounds on unknown session", func() int {
			status, _, _, _ := postStream(t, ts, "s-99999999", roundsBody(t, StreamRound{Y: y}))
			return status
		}, http.StatusNotFound},
		{"paths with both verbs", func() int {
			zero := 0
			resp, _ := postJSON(t, ts, "/v1/sessions/"+sr.Session+"/paths",
				SessionPathsRequest{Add: []string{"a", "b"}, Remove: &zero})
			return resp.StatusCode
		}, http.StatusBadRequest},
		{"paths with neither verb", func() int {
			resp, _ := postJSON(t, ts, "/v1/sessions/"+sr.Session+"/paths", SessionPathsRequest{})
			return resp.StatusCode
		}, http.StatusBadRequest},
		{"add with unknown node", func() int {
			resp, _ := postJSON(t, ts, "/v1/sessions/"+sr.Session+"/paths",
				SessionPathsRequest{Add: []string{"no-such-node", "also-not"}})
			return resp.StatusCode
		}, http.StatusBadRequest},
		{"remove out of range", func() int {
			oob := 99
			resp, _ := postJSON(t, ts, "/v1/sessions/"+sr.Session+"/paths", SessionPathsRequest{Remove: &oob})
			return resp.StatusCode
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if got := tc.do(); got != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, got, tc.want)
		}
	}

	// In-band stream errors: a mis-shaped round terminates the stream
	// with an error line, after serving the rounds before it.
	bad := roundsBody(t, StreamRound{Y: y}, StreamRound{Y: []float64{1, 2, 3}})
	status, verdicts, errLine, summary := postStream(t, ts, sr.Session, bad)
	if status != http.StatusOK {
		t.Fatalf("mis-shaped stream status = %d", status)
	}
	if len(verdicts) != 1 || errLine == nil || summary != nil {
		t.Fatalf("mis-shaped stream: %d verdicts, err=%+v, summary=%+v", len(verdicts), errLine, summary)
	}
	if errLine.Round != 1 {
		t.Errorf("error round = %d, want 1", errLine.Round)
	}

	status, verdicts, errLine, _ = postStream(t, ts, sr.Session, "{\"y\": [1], \"rounds\": [[1]]}\n")
	if status != http.StatusOK || len(verdicts) != 0 || errLine == nil {
		t.Fatalf("both-verbs line: status=%d verdicts=%d err=%+v", status, len(verdicts), errLine)
	}
}

func TestSessionSurvivesTopologyEvict(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sr, sys := sessionFixture(t, srv, ts)

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/topologies/fig1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evict: %d", resp.StatusCode)
	}

	// The session holds its own System snapshot; it keeps serving.
	rounds := measureRounds(t, sys, 23, 2)
	status, verdicts, errLine, summary := postStream(t, ts, sr.Session, roundsBody(t, StreamRound{Rounds: rounds}))
	if status != http.StatusOK || errLine != nil || len(verdicts) != 2 || summary == nil {
		t.Fatalf("stream after evict: status=%d err=%+v n=%d", status, errLine, len(verdicts))
	}
}

// openPinnedStream starts an interactive rounds stream over an io.Pipe
// and hands back the writer plus a reader positioned after the first
// verdict — at which point the stream provably holds a worker slot.
func openPinnedStream(t *testing.T, ts *httptest.Server, id string, y []float64) (*io.PipeWriter, *bufio.Reader, *http.Response) {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions/"+id+"/rounds", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pinned stream status = %d", resp.StatusCode)
	}
	line, err := json.Marshal(StreamRound{Y: y})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pw.Write(append(line, '\n')); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	first, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatalf("reading first verdict: %v", err)
	}
	if l := parseStreamLine(t, first); l.verdict == nil {
		t.Fatalf("first line is not a verdict: %s", first)
	}
	return pw, br, resp
}

func TestSessionRoundsShed429WhenPoolBusy(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sr, sys := sessionFixture(t, srv, ts)
	y := measureRounds(t, sys, 5, 1)[0]

	pw, br, resp := openPinnedStream(t, ts, sr.Session, y)
	defer resp.Body.Close()

	// The only worker slot is pinned by the open stream: a second stream
	// must shed with 429 before writing any stream bytes.
	status, _, _, _ := postStream(t, ts, sr.Session, roundsBody(t, StreamRound{Y: y}))
	if status != http.StatusTooManyRequests {
		t.Fatalf("concurrent stream status = %d, want 429", status)
	}
	if got := srv.Metrics().ReqBusy.Load(); got != 1 {
		t.Errorf("ReqBusy = %d, want 1", got)
	}

	// Releasing the stream frees the slot; a retry succeeds.
	pw.Close()
	last, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(last, []byte(`"done":true`)) {
		t.Fatalf("pinned stream did not finish cleanly: %s", last)
	}
	status, verdicts, _, _ := postStream(t, ts, sr.Session, roundsBody(t, StreamRound{Y: y}))
	if status != http.StatusOK || len(verdicts) != 1 {
		t.Fatalf("retry after release: status=%d n=%d", status, len(verdicts))
	}
}

// burnClock advances a FakeClock past d.
func burnClock(clk *obs.FakeClock, d time.Duration) {
	start := clk.Now()
	for clk.Now().Sub(start) < d {
	}
}

func TestSessionReaping(t *testing.T) {
	clk := obs.NewFakeClock(time.Unix(0, 0), time.Second)
	idle := time.Hour
	srv := New(Config{Clock: clk, SessionIdleTimeout: idle})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sr, _ := sessionFixture(t, srv, ts)

	// Fresh session: nothing to reap.
	if n := srv.ReapSessions(); n != 0 {
		t.Fatalf("reaped %d fresh sessions", n)
	}

	// Two expiry paths: the periodic reaper...
	burnClock(clk, idle+time.Minute)
	if n := srv.ReapSessions(); n != 1 {
		t.Fatalf("reaped %d expired sessions, want 1", n)
	}
	if resp, _ := get(t, ts, "/v1/sessions/"+sr.Session); resp.StatusCode != http.StatusNotFound {
		t.Errorf("status after reap = %d, want 404", resp.StatusCode)
	}

	// ...and the lazy check on access, which answers 410 Gone.
	resp, raw := postJSON(t, ts, "/v1/sessions", SessionRequest{Topology: "fig1"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("second session: %d %s", resp.StatusCode, raw)
	}
	var sr2 SessionResponse
	decodeInto(t, raw, &sr2)
	burnClock(clk, idle+time.Minute)
	if resp, _ := get(t, ts, "/v1/sessions/"+sr2.Session); resp.StatusCode != http.StatusGone {
		t.Errorf("lazy-expired status = %d, want 410", resp.StatusCode)
	}
	if got := srv.Metrics().SessionsReaped.Load(); got != 2 {
		t.Errorf("SessionsReaped = %d, want 2", got)
	}
	mt := metricsText(t, ts)
	if !strings.Contains(mt, "tomographyd_sessions_active 0") {
		t.Errorf("metrics should show zero active sessions:\n%s", grepMetrics(mt, "tomographyd_sessions"))
	}
}

func TestSessionReapSkipsInFlightStream(t *testing.T) {
	clk := obs.NewFakeClock(time.Unix(0, 0), time.Second)
	idle := time.Hour
	srv := New(Config{Clock: clk, SessionIdleTimeout: idle})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sr, sys := sessionFixture(t, srv, ts)
	y := measureRounds(t, sys, 5, 1)[0]

	pw, br, resp := openPinnedStream(t, ts, sr.Session, y)
	defer resp.Body.Close()

	// Idle long past the timeout — but the stream is in flight, so the
	// session must survive both the reaper and the lazy check.
	burnClock(clk, idle+time.Minute)
	if n := srv.ReapSessions(); n != 0 {
		t.Fatalf("reaped %d sessions with a stream in flight", n)
	}
	if resp, _ := get(t, ts, "/v1/sessions/"+sr.Session); resp.StatusCode != http.StatusOK {
		t.Errorf("in-flight session status = %d, want 200", resp.StatusCode)
	}

	// The stream still works after the fake hour.
	line, _ := json.Marshal(StreamRound{Y: y})
	if _, err := pw.Write(append(line, '\n')); err != nil {
		t.Fatal(err)
	}
	next, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	if l := parseStreamLine(t, next); l.verdict == nil || l.verdict.Round != 1 {
		t.Fatalf("expected round-1 verdict, got %s", next)
	}

	// Stream ends → lastActive refreshes → still not reapable...
	pw.Close()
	if _, err := io.ReadAll(br); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return srv.ReapSessions() == 0 && sessionInFlight(srv, sr.Session) == 0 })
	// ...until it idles out again.
	burnClock(clk, idle+time.Minute)
	waitFor(t, func() bool { return srv.ReapSessions() == 1 })
	if got := srv.Metrics().SessionsReaped.Load(); got != 1 {
		t.Errorf("SessionsReaped = %d, want 1", got)
	}
}

func sessionInFlight(srv *Server, id string) int {
	srv.sessions.mu.Lock()
	ss, ok := srv.sessions.m[id]
	srv.sessions.mu.Unlock()
	if !ok {
		return 0
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.inFlight
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

func grepMetrics(text, prefix string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// --- Race tests (exercised with -race in the check script) --------------

func TestSessionConcurrentRoundStreams(t *testing.T) {
	srv := New(Config{Workers: 16, RequestTimeout: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sr, sys := sessionFixture(t, srv, ts)

	const streams, perStream = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for g := 0; g < streams; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rounds := measureRounds(t, sys, int64(100+g), perStream)
			status, verdicts, errLine, summary := postStream(t, ts, sr.Session, roundsBody(t, StreamRound{Rounds: rounds}))
			if status != http.StatusOK || errLine != nil {
				errs <- fmt.Errorf("stream %d: status=%d err=%+v", g, status, errLine)
				return
			}
			if len(verdicts) != perStream || summary == nil || summary.Rounds != perStream {
				errs <- fmt.Errorf("stream %d: %d verdicts, summary %+v", g, len(verdicts), summary)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	resp, raw := get(t, ts, "/v1/sessions/"+sr.Session)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d", resp.StatusCode)
	}
	var st SessionStatusResponse
	decodeInto(t, raw, &st)
	if st.Rounds != streams*perStream {
		t.Errorf("session rounds = %d, want %d", st.Rounds, streams*perStream)
	}
	if got := srv.Metrics().SessionRounds.Load(); got != streams*perStream {
		t.Errorf("SessionRounds metric = %d, want %d", got, streams*perStream)
	}
}

func TestSessionRoundsRaceMutateDeleteEvict(t *testing.T) {
	srv := New(Config{Workers: 16, RequestTimeout: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sr, sys := sessionFixture(t, srv, ts)
	_, walks, _, _ := fig1Wire(t)

	var wg sync.WaitGroup
	errs := make(chan error, 32)

	// Round streams hammer the session...
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rounds := measureRounds(t, sys, int64(g), 10)
			for i := 0; i < 10; i++ {
				status, _, _, _ := postStream(t, ts, sr.Session, roundsBody(t, StreamRound{Y: rounds[i]}))
				switch status {
				case http.StatusOK, http.StatusNotFound, http.StatusGone:
				default:
					errs <- fmt.Errorf("stream %d/%d: unexpected status %d", g, i, status)
					return
				}
			}
		}(g)
	}
	// ...while paths mutate (adds only: removal of a racing add is
	// index-unstable; adds never break identifiability)...
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			resp, _ := postJSON(t, ts, "/v1/sessions/"+sr.Session+"/paths", SessionPathsRequest{Add: walks[i%len(walks)]})
			switch resp.StatusCode {
			case http.StatusOK, http.StatusNotFound, http.StatusGone:
			default:
				errs <- fmt.Errorf("mutate %d: unexpected status %d", i, resp.StatusCode)
				return
			}
		}
	}()
	// ...the registry entry is evicted from under it...
	wg.Add(1)
	go func() {
		defer wg.Done()
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/topologies/fig1", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errs <- err
			return
		}
		resp.Body.Close()
	}()
	// ...and finally the session itself is deleted mid-traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+sr.Session, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errs <- err
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
			errs <- fmt.Errorf("session delete: unexpected status %d", resp.StatusCode)
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The session must be gone exactly once, however the race resolved.
	if resp, _ := get(t, ts, "/v1/sessions/"+sr.Session); resp.StatusCode != http.StatusNotFound {
		t.Errorf("post-race status = %d, want 404", resp.StatusCode)
	}
}
