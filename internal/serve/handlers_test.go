package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestRouteStatusAndHeaders pins status code and Content-Type for every
// route, including method mismatches and unknown paths. The JSON routes
// must answer application/json on success AND on error; /metrics must
// answer the Prometheus text content type.
func TestRouteStatusAndHeaders(t *testing.T) {
	edges, paths, _, sys := fig1Wire(t)
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if resp, raw := postJSON(t, ts, "/v1/topologies", TopologyRequest{Name: "fig1", Edges: edges, Paths: paths}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, raw)
	}
	validRounds, err := json.Marshal(RoundsRequest{Topology: "fig1", Y: make([]float64, sys.NumPaths())})
	if err != nil {
		t.Fatal(err)
	}
	registerAgain, err := json.Marshal(TopologyRequest{Name: "fig1-alias", Edges: edges, Paths: paths})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name        string
		method      string
		path        string
		body        []byte
		wantStatus  int
		wantCT      string // Content-Type prefix
		wantAllowed bool   // 405 responses must carry an Allow header
	}{
		{"topologies POST", "POST", "/v1/topologies", registerAgain, http.StatusCreated, "application/json", false},
		{"topologies GET is 405", "GET", "/v1/topologies", nil, http.StatusMethodNotAllowed, "", true},
		{"estimate POST", "POST", "/v1/estimate", validRounds, http.StatusOK, "application/json", false},
		{"estimate GET is 405", "GET", "/v1/estimate", nil, http.StatusMethodNotAllowed, "", true},
		{"estimate DELETE is 405", "DELETE", "/v1/estimate", nil, http.StatusMethodNotAllowed, "", true},
		{"inspect POST", "POST", "/v1/inspect", validRounds, http.StatusOK, "application/json", false},
		{"inspect GET is 405", "GET", "/v1/inspect", nil, http.StatusMethodNotAllowed, "", true},
		{"healthz GET", "GET", "/healthz", nil, http.StatusOK, "application/json", false},
		{"healthz POST is 405", "POST", "/healthz", []byte("{}"), http.StatusMethodNotAllowed, "", true},
		{"metrics GET", "GET", "/metrics", nil, http.StatusOK, "text/plain; version=0.0.4", false},
		{"metrics POST is 405", "POST", "/metrics", []byte("{}"), http.StatusMethodNotAllowed, "", true},
		{"evict DELETE", "DELETE", "/v1/topologies/fig1-alias", nil, http.StatusOK, "application/json", false},
		{"evict missing is 404", "DELETE", "/v1/topologies/ghost", nil, http.StatusNotFound, "application/json", false},
		{"evict GET is 405", "GET", "/v1/topologies/fig1", nil, http.StatusMethodNotAllowed, "", true},
		{"unknown path is 404", "GET", "/v1/nope", nil, http.StatusNotFound, "", false},
		{"error body is JSON", "POST", "/v1/estimate", []byte("{broken"), http.StatusBadRequest, "application/json", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if tc.body != nil {
				req.Header.Set("Content-Type", "application/json")
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, body)
			}
			if tc.wantCT != "" && !strings.HasPrefix(resp.Header.Get("Content-Type"), tc.wantCT) {
				t.Errorf("Content-Type = %q, want prefix %q", resp.Header.Get("Content-Type"), tc.wantCT)
			}
			if tc.wantAllowed && resp.Header.Get("Allow") == "" {
				t.Errorf("405 without an Allow header")
			}
		})
	}
}

// TestOversizedBody413 exercises the request-size limit on both
// announcement paths: a declared Content-Length over the limit and a
// body that overruns the limit while being read.
func TestOversizedBody413(t *testing.T) {
	edges, paths, _, _ := fig1Wire(t)
	srv := New(Config{MaxBodyBytes: 512})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	big, err := json.Marshal(TopologyRequest{Name: "big", Edges: edges, Paths: paths})
	if err != nil {
		t.Fatal(err)
	}
	if len(big) <= 512 {
		t.Fatalf("fixture body only %d bytes; raise the payload", len(big))
	}

	t.Run("content-length over limit", func(t *testing.T) {
		resp, raw := postJSON(t, ts, "/v1/topologies", TopologyRequest{Name: "big", Edges: edges, Paths: paths})
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("status = %d (%s), want 413", resp.StatusCode, raw)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("Content-Type = %q", ct)
		}
		var er errorResponse
		decodeInto(t, raw, &er)
		if !strings.Contains(er.Error, "too large") {
			t.Errorf("error %q does not mention the size limit", er.Error)
		}
	})

	t.Run("chunked body over limit", func(t *testing.T) {
		// No Content-Length: the limit must trip inside the JSON decode.
		req, err := http.NewRequest("POST", ts.URL+"/v1/topologies", io.NopCloser(bytes.NewReader(big)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.ContentLength = -1
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("status = %d (%s), want 413", resp.StatusCode, body)
		}
	})

	if got := srv.Metrics().ReqErrors.Load(); got != 2 {
		t.Errorf("ReqErrors = %d, want 2", got)
	}
}

// TestEvictLifecycleOverHTTP walks register → estimate → evict → 404 →
// re-register, asserting the solver cache stays warm across the evict.
func TestEvictLifecycleOverHTTP(t *testing.T) {
	edges, paths, _, sys := fig1Wire(t)
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if resp, raw := postJSON(t, ts, "/v1/topologies", TopologyRequest{Name: "fig1", Edges: edges, Paths: paths}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, raw)
	}
	y := make([]float64, sys.NumPaths())
	if resp, raw := postJSON(t, ts, "/v1/estimate", RoundsRequest{Topology: "fig1", Y: y}); resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: %d %s", resp.StatusCode, raw)
	}

	req, err := http.NewRequest("DELETE", ts.URL+"/v1/topologies/fig1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evict: %d %s", resp.StatusCode, raw)
	}
	var ev EvictResponse
	decodeInto(t, raw, &ev)
	if ev.Name != "fig1" || ev.Digest != sys.Digest() {
		t.Errorf("evict response = %+v", ev)
	}

	if resp, _ := postJSON(t, ts, "/v1/estimate", RoundsRequest{Topology: "fig1", Y: y}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("estimate after evict: %d, want 404", resp.StatusCode)
	}
	// Re-registering the identical configuration hits the solver cache.
	resp2, raw2 := postJSON(t, ts, "/v1/topologies", TopologyRequest{Name: "fig1", Edges: edges, Paths: paths})
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("re-register: %d %s", resp2.StatusCode, raw2)
	}
	var tr TopologyResponse
	decodeInto(t, raw2, &tr)
	if !tr.SolverCached {
		t.Errorf("re-registration after evict missed the solver cache")
	}
	if got := srv.Metrics().Evictions.Load(); got != 1 {
		t.Errorf("Evictions = %d, want 1", got)
	}
	if got := srv.Metrics().ReqEvict.Load(); got != 1 {
		t.Errorf("ReqEvict = %d, want 1", got)
	}

	text := metricsText(t, ts)
	for _, want := range []string{
		`tomographyd_requests_total{route="evict"} 1`,
		"tomographyd_evictions_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func metricsText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}
