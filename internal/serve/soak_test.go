package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/la"
	"repro/internal/store"
	"repro/internal/tomo"
)

// TestRegistrySoakConcurrentRegisterEstimateEvict hammers one Registry
// with register/estimate/evict from 16 goroutines and reconciles the
// final metrics against client-side tallies. The short mode stays around
// a couple of seconds; the long mode (go test without -short) multiplies
// the iteration count. Run under -race this is the registry's core
// concurrency contract: entries are immutable, lookups never observe a
// half-built entry, and eviction never corrupts a concurrent estimate.
func TestRegistrySoakConcurrentRegisterEstimateEvict(t *testing.T) {
	_, _, _, sys := fig1Wire(t)
	m := NewMetrics()
	reg := NewRegistry(m)

	// Every mutation in the soak is journaled: the WAL must come out of
	// the 16-goroutine barrage replayable (verified after the soak).
	dir := t.TempDir()
	st, err := store.Open(context.Background(), dir, store.Options{Fsync: store.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	reg.AttachStore(st)

	// Phase 0: warm the solver cache once so the concurrent phase has an
	// exact expectation (every later registration of the same R digest
	// must hit; concurrent first-misses would make the split racy).
	warm, err := tomo.NewSystem(sys.Graph(), sys.Paths())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.RegisterSystem("warm", warm, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Evict("warm"); err != nil {
		t.Fatal(err)
	}

	const workers = 16
	iters := 2000 // must stay divisible by 4: the op mix cycles i % 4
	if testing.Short() {
		iters = 248
	}

	y := make(la.Vector, sys.NumPaths())
	for i := range y {
		y[i] = float64(1 + i)
	}
	var (
		privateOK           atomic.Int64
		hotOK, hotConflict  atomic.Int64
		evictOK, evictMiss  atomic.Int64
		estimates, misses   atomic.Int64
		cacheHitRegistered  atomic.Int64
		cacheMissRegistered atomic.Int64
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0: // private name: register must succeed exactly once
					s2, err := tomo.NewSystem(sys.Graph(), sys.Paths())
					if err != nil {
						t.Error(err)
						return
					}
					name := fmt.Sprintf("g%d-i%d", w, i)
					e, err := reg.RegisterSystem(name, s2, 0)
					if err != nil {
						t.Errorf("register %s: %v", name, err)
						return
					}
					privateOK.Add(1)
					if e.CacheHit {
						cacheHitRegistered.Add(1)
					} else {
						cacheMissRegistered.Add(1)
					}
				case 1: // contended name: conflict is a normal outcome
					s2, err := tomo.NewSystem(sys.Graph(), sys.Paths())
					if err != nil {
						t.Error(err)
						return
					}
					e, err := reg.RegisterSystem("hot", s2, 0)
					switch {
					case err == nil:
						hotOK.Add(1)
						if e.CacheHit {
							cacheHitRegistered.Add(1)
						} else {
							cacheMissRegistered.Add(1)
						}
					default:
						hotConflict.Add(1)
					}
				case 2: // estimate through whatever entry is visible
					e, err := reg.Get("hot")
					if err != nil {
						misses.Add(1)
						continue
					}
					xhat, err := e.Sys.Estimate(y)
					if err != nil || len(xhat) != sys.NumLinks() {
						t.Errorf("estimate via entry: %v", err)
						return
					}
					estimates.Add(1)
				case 3: // evict the contended name
					if _, err := reg.Evict("hot"); err == nil {
						evictOK.Add(1)
					} else {
						evictMiss.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()

	// Deep reconciliation: every counter has an exact client-side twin.
	perOp := int64(workers * iters / 4)
	if got := privateOK.Load(); got != perOp {
		t.Errorf("private registers %d != attempts %d", got, perOp)
	}
	if got := hotOK.Load() + hotConflict.Load(); got != perOp {
		t.Errorf("hot registers %d != attempts %d", got, perOp)
	}
	if got := evictOK.Load() + evictMiss.Load(); got != perOp {
		t.Errorf("evictions %d != attempts %d", got, perOp)
	}
	// The warm-up guaranteed a cached factor, so every concurrent
	// registration must have hit the cache.
	if cacheMissRegistered.Load() != 0 {
		t.Errorf("%d registrations missed a warm cache", cacheMissRegistered.Load())
	}
	if got := cacheHitRegistered.Load(); got != privateOK.Load()+hotOK.Load() {
		t.Errorf("successful registrations with cache hit = %d, want %d", got, privateOK.Load()+hotOK.Load())
	}
	// RegisterSystem adopts the solver cache before the name-conflict
	// check, so every attempt — including hot-name conflicts — counts one
	// cache hit in the metrics.
	wantHits := privateOK.Load() + hotOK.Load() + hotConflict.Load()
	if got := m.CacheHits.Load(); got != wantHits {
		t.Errorf("metrics CacheHits = %d, want %d", got, wantHits)
	}
	if got := m.CacheMisses.Load(); got != 1 {
		t.Errorf("metrics CacheMisses = %d, want 1 (warm-up only)", got)
	}
	// Registry size: all private names survive; "hot" survives iff the
	// last interleaved op on it was a successful register.
	hotAlive := int64(0)
	if _, err := reg.Get("hot"); err == nil {
		hotAlive = 1
	}
	wantLen := int(privateOK.Load() + hotAlive)
	if got := reg.Len(); got != wantLen {
		t.Errorf("registry Len = %d, want %d", got, wantLen)
	}
	// Successful hot registers exceed successful evicts by exactly
	// hotAlive: every evict removed one earlier successful register.
	if got := hotOK.Load() - evictOK.Load(); got != hotAlive {
		t.Errorf("hot register/evict imbalance: %d, want %d", got, hotAlive)
	}
	if estimates.Load()+misses.Load() != perOp {
		t.Errorf("estimate ops %d != attempts %d", estimates.Load()+misses.Load(), perOp)
	}

	// Crash-safety reconciliation: close the store, recover from disk
	// into a fresh registry, and demand the exact surviving name set and
	// digests. Interleaved register/evict from 16 goroutines must leave
	// a WAL whose replay converges to the same state the live registry
	// reached — nothing torn, nothing resurrected, nothing lost.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(context.Background(), dir, store.Options{})
	if err != nil {
		t.Fatalf("post-soak WAL not replayable: %v", err)
	}
	defer st2.Close()
	if rec := st2.Recovered(); rec.TornTail {
		t.Errorf("cleanly closed WAL recovered a torn tail (%d bytes truncated)", rec.TruncatedBytes)
	}
	reg2 := NewRegistry(NewMetrics())
	if _, err := reg2.Restore(context.Background(), st2.Recovered().Topologies); err != nil {
		t.Fatalf("post-soak restore: %v", err)
	}
	before, after := reg.Names(), reg2.Names()
	if len(before) != len(after) {
		t.Fatalf("recovered %d topologies, live registry has %d", len(after), len(before))
	}
	for i, name := range before {
		if after[i] != name {
			t.Fatalf("recovered name set diverged at %d: %q vs %q", i, after[i], name)
		}
		live, _ := reg.Get(name)
		rec, err := reg2.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if live.Digest != rec.Digest {
			t.Errorf("%s recovered with digest %s, want %s", name, rec.Digest, live.Digest)
		}
	}
}
