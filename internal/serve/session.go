package serve

import (
	"bufio"
	"context"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/forensics"
	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/obs"
	"repro/internal/tomo"
)

// ErrGone is returned when a session ID refers to a session that the
// idle reaper (or a lazy expiry check) has already removed — the
// streaming analogue of a dangling handle, mapped to HTTP 410.
var ErrGone = errors.New("serve: session expired")

// DefaultSessionIdleTimeout is how long a session may sit idle — no
// round stream, path mutation, or status poll — before the reaper
// removes it.
const DefaultSessionIdleTimeout = 5 * time.Minute

// session is one long-lived round stream binding: a tomography system
// snapshot (initially the registered topology's), the detection
// threshold, and activity accounting for the idle reaper.
//
// State machine: open → (rounds | paths | status)* → closed (DELETE) or
// reaped (idle timeout). A session holds its own *tomo.System pointer:
// evicting the underlying topology does not disturb open sessions (they
// keep serving their snapshot, exactly like in-flight one-shot
// requests against an immutable Entry), and path mutations swap in a
// derived System without touching the registry.
type session struct {
	id      string
	topo    string
	created time.Time

	mu        sync.Mutex
	sys       *tomo.System
	digest    string
	alpha     float64
	last      time.Time
	inFlight  int
	rounds    int64
	alarms    int64
	mutations int64
	closed    bool
}

// touch marks activity and reports whether the session is still open.
func (ss *session) touch(now time.Time) bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return false
	}
	ss.last = now
	return true
}

// begin marks a round stream in flight (reap protection).
func (ss *session) begin(now time.Time) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return fmt.Errorf("%w: session %s closed", ErrGone, ss.id)
	}
	ss.inFlight++
	ss.last = now
	return nil
}

func (ss *session) end(now time.Time) {
	ss.mu.Lock()
	ss.inFlight--
	ss.last = now
	ss.mu.Unlock()
}

// snapshot returns the system, its digest, and the threshold to use for
// the next batch. Taken per NDJSON input line, so a concurrent path
// mutation becomes visible at the next batch boundary.
func (ss *session) snapshot() (*tomo.System, string, float64, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.sys, ss.digest, ss.alpha, ss.closed
}

// sessionTable is the daemon's live-session map. Sessions are keyed by
// server-minted IDs; the table's lock covers only membership — per-
// session state has its own mutex.
type sessionTable struct {
	mu  sync.Mutex
	m   map[string]*session
	seq atomic.Int64
}

func newSessionTable() *sessionTable {
	return &sessionTable{m: make(map[string]*session)}
}

func (t *sessionTable) add(ss *session) {
	t.mu.Lock()
	t.m[ss.id] = ss
	t.mu.Unlock()
}

func (t *sessionTable) get(id string) (*session, error) {
	t.mu.Lock()
	ss, ok := t.m[id]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: session %q", ErrNotFound, id)
	}
	return ss, nil
}

// remove closes and unlinks a session; reports whether it was present
// and its final counters.
func (t *sessionTable) remove(id string) (*session, error) {
	t.mu.Lock()
	ss, ok := t.m[id]
	if ok {
		delete(t.m, id)
	}
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: session %q", ErrNotFound, id)
	}
	ss.mu.Lock()
	ss.closed = true
	ss.mu.Unlock()
	return ss, nil
}

func (t *sessionTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// ReapSessions removes every session idle past the configured timeout,
// skipping sessions with a round stream in flight (they are live by
// definition; their lastActive updates when the stream ends). It
// returns the number reaped. The daemon calls this on a ticker; tests
// drive it directly against a FakeClock.
func (s *Server) ReapSessions() int {
	if s.idle < 0 {
		return 0
	}
	now := s.clock.Now()
	s.sessions.mu.Lock()
	var victims []*session
	for id, ss := range s.sessions.m {
		ss.mu.Lock()
		expired := ss.inFlight == 0 && now.Sub(ss.last) > s.idle
		if expired {
			ss.closed = true
			delete(s.sessions.m, id)
			victims = append(victims, ss)
		}
		ss.mu.Unlock()
	}
	s.sessions.mu.Unlock()
	if n := len(victims); n > 0 {
		s.metrics.SessionsReaped.Add(int64(n))
	}
	return len(victims)
}

// --- Wire types ---------------------------------------------------------

// SessionRequest is the body of POST /v1/sessions.
type SessionRequest struct {
	// Topology names a registered configuration to bind.
	Topology string `json:"topology"`
	// Alpha optionally overrides the registered detection threshold for
	// this session (0 keeps the registered value).
	Alpha float64 `json:"alpha,omitempty"`
}

// SessionResponse is the body of a successful session create.
type SessionResponse struct {
	Session            string  `json:"session"`
	Topology           string  `json:"topology"`
	Digest             string  `json:"digest"`
	Alpha              float64 `json:"alpha"`
	NumLinks           int     `json:"numLinks"`
	NumPaths           int     `json:"numPaths"`
	IdleTimeoutSeconds float64 `json:"idleTimeoutSeconds,omitempty"`
}

// SessionStatusResponse is the body of GET /v1/sessions/{id}.
type SessionStatusResponse struct {
	Session       string  `json:"session"`
	Topology      string  `json:"topology"`
	Digest        string  `json:"digest"`
	Alpha         float64 `json:"alpha"`
	NumPaths      int     `json:"numPaths"`
	Rounds        int64   `json:"rounds"`
	Alarms        int64   `json:"alarms"`
	PathMutations int64   `json:"pathMutations"`
}

// SessionCloseResponse is the body of DELETE /v1/sessions/{id}.
type SessionCloseResponse struct {
	Session string `json:"session"`
	Rounds  int64  `json:"rounds"`
	Alarms  int64  `json:"alarms"`
}

// StreamRound is one NDJSON request line on POST /v1/sessions/{id}/rounds,
// carrying a batch of measurement vectors in exactly one of three forms:
// a single vector in y, a batch in rounds, or a packed batch in packed —
// base64 (standard alphabet) of row-major little-endian float64s, with
// the row width taken from the session's current path count. Packed
// rounds skip float text entirely (bit-exact, no shortest-repr
// formatting on either side), which matters at rate: a 10k-link y in
// JSON text costs more to format and parse than to solve. Every form is
// solved with one amortized EstimateBatch call per line.
//
// xhat controls verdict verbosity for the line's rounds: absent or
// true, every verdict carries the full link-delay estimate; false,
// verdicts are slim (detected + residual only) — the right mode at
// scale, where shipping NumLinks floats per round costs more than the
// solve itself.
type StreamRound struct {
	Y      []float64   `json:"y,omitempty"`
	Rounds [][]float64 `json:"rounds,omitempty"`
	Packed string      `json:"packed,omitempty"`
	XHat   *bool       `json:"xhat,omitempty"`
}

// wantXHat reports whether verdicts for this line include the estimate.
func (sr *StreamRound) wantXHat() bool { return sr.XHat == nil || *sr.XHat }

// batch resolves the line's measurement vectors; numPaths is the
// session system's current path count, needed to slice packed payloads
// into rows.
func (sr *StreamRound) batch(numPaths int) ([][]float64, error) {
	set := 0
	if sr.Y != nil {
		set++
	}
	if sr.Rounds != nil {
		set++
	}
	if sr.Packed != "" {
		set++
	}
	if set != 1 {
		return nil, fmt.Errorf("%w: provide exactly one of y, rounds, packed", ErrBadRequest)
	}
	if sr.Y != nil {
		return [][]float64{sr.Y}, nil
	}
	if sr.Packed != "" {
		return unpackRounds(sr.Packed, numPaths)
	}
	if len(sr.Rounds) == 0 {
		return nil, fmt.Errorf("%w: empty rounds", ErrBadRequest)
	}
	for i, y := range sr.Rounds {
		if y == nil {
			return nil, fmt.Errorf("%w: rounds[%d] is null", ErrBadRequest, i)
		}
	}
	return sr.Rounds, nil
}

// unpackRounds decodes a packed batch: base64 of n x m row-major
// little-endian float64s, m fixed by the session's path count.
func unpackRounds(s string, m int) ([][]float64, error) {
	if m <= 0 {
		return nil, fmt.Errorf("%w: session system has no paths", ErrBadRequest)
	}
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("%w: packed rounds: %v", ErrBadRequest, err)
	}
	if len(raw) == 0 || len(raw)%(8*m) != 0 {
		return nil, fmt.Errorf("%w: packed payload is %d bytes, want a positive multiple of 8x%d",
			ErrBadRequest, len(raw), m)
	}
	flat := make([]float64, len(raw)/8)
	for i := range flat {
		f := math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("%w: packed float %d is not finite", ErrBadRequest, i)
		}
		flat[i] = f
	}
	out := make([][]float64, len(flat)/m)
	for r := range out {
		out[r] = flat[r*m : (r+1)*m]
	}
	return out, nil
}

// PackRounds encodes measurement vectors into the packed wire form
// (base64 row-major little-endian float64) accepted by StreamRound.
// All rows must share one width. Exported for streaming clients.
func PackRounds(rounds [][]float64) (string, error) {
	if len(rounds) == 0 || len(rounds[0]) == 0 {
		return "", errors.New("serve: pack: empty batch")
	}
	m := len(rounds[0])
	raw := make([]byte, 0, len(rounds)*m*8)
	for i, row := range rounds {
		if len(row) != m {
			return "", fmt.Errorf("serve: pack: row %d has %d entries, want %d", i, len(row), m)
		}
		for _, f := range row {
			raw = binary.LittleEndian.AppendUint64(raw, math.Float64bits(f))
		}
	}
	return base64.StdEncoding.EncodeToString(raw), nil
}

// StreamVerdict is one NDJSON response line: the paper's per-round
// verdict (‖R·x̂ − y‖₁ > α, Eq. 23) plus the estimate itself. Round
// indices count from 0 within the request.
type StreamVerdict struct {
	Round        int       `json:"round"`
	Detected     bool      `json:"detected"`
	ResidualNorm float64   `json:"residualNorm"`
	XHat         []float64 `json:"xhat,omitempty"`
}

// StreamError is a terminal NDJSON response line: the round that failed
// and why. No further lines follow it.
type StreamError struct {
	Round int    `json:"round"`
	Error string `json:"error"`
}

// StreamSummary is the final NDJSON response line of a fully processed
// stream.
type StreamSummary struct {
	Done   bool `json:"done"`
	Rounds int  `json:"rounds"`
	Alarms int  `json:"alarms"`
}

// SessionPathsRequest is the body of POST /v1/sessions/{id}/paths:
// exactly one of add (a node-name walk over the session's topology,
// appended as a new measurement path) or remove (an existing path
// index).
type SessionPathsRequest struct {
	Add    []string `json:"add,omitempty"`
	Remove *int     `json:"remove,omitempty"`
}

// SessionPathsResponse reports a successful path mutation, including
// which solver-derivation route tomo took ("rank1-update",
// "rank1-downdate", "refactor", "sparse-append", "coverage-screen",
// "cold").
type SessionPathsResponse struct {
	Session  string `json:"session"`
	NumPaths int    `json:"numPaths"`
	Digest   string `json:"digest"`
	Method   string `json:"method"`
}

// --- Handlers -----------------------------------------------------------

func (s *Server) handleSessionCreate(w http.ResponseWriter, req *http.Request) {
	var sr SessionRequest
	if !s.decode(w, req, &sr) {
		return
	}
	entry, err := s.lookup(req.Context(), sr.Topology)
	if err != nil {
		s.fail(w, err)
		return
	}
	alpha := entry.Det.Alpha()
	if sr.Alpha != 0 {
		if sr.Alpha < 0 {
			s.fail(w, fmt.Errorf("%w: negative alpha %g", ErrBadRequest, sr.Alpha))
			return
		}
		alpha = sr.Alpha
	}
	now := s.clock.Now()
	ss := &session{
		id:      fmt.Sprintf("s-%08d", s.sessions.seq.Add(1)),
		topo:    entry.Name,
		created: now,
		sys:     entry.Sys,
		digest:  entry.Digest,
		alpha:   alpha,
		last:    now,
	}
	s.sessions.add(ss)
	s.metrics.SessionsOpened.Add(1)
	resp := SessionResponse{
		Session:  ss.id,
		Topology: ss.topo,
		Digest:   ss.digest,
		Alpha:    alpha,
		NumLinks: entry.Sys.NumLinks(),
		NumPaths: entry.Sys.NumPaths(),
	}
	if s.idle >= 0 {
		resp.IdleTimeoutSeconds = s.idle.Seconds()
	}
	s.writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleSessionGet(w http.ResponseWriter, req *http.Request) {
	ss, err := s.getSession(req.PathValue("id"))
	if err != nil {
		s.fail(w, err)
		return
	}
	ss.mu.Lock()
	resp := SessionStatusResponse{
		Session:       ss.id,
		Topology:      ss.topo,
		Digest:        ss.digest,
		Alpha:         ss.alpha,
		NumPaths:      ss.sys.NumPaths(),
		Rounds:        ss.rounds,
		Alarms:        ss.alarms,
		PathMutations: ss.mutations,
	}
	ss.mu.Unlock()
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, req *http.Request) {
	ss, err := s.sessions.remove(req.PathValue("id"))
	if err != nil {
		s.fail(w, err)
		return
	}
	s.metrics.SessionsClosed.Add(1)
	ss.mu.Lock()
	resp := SessionCloseResponse{Session: ss.id, Rounds: ss.rounds, Alarms: ss.alarms}
	ss.mu.Unlock()
	s.writeJSON(w, http.StatusOK, resp)
}

// handleSessionRounds is the streaming hot path: NDJSON batches in,
// NDJSON verdicts out, flushed per batch. Backpressure is explicit: the
// whole stream runs on one worker slot acquired non-blockingly, and a
// full pool sheds the request with 429 before any stream bytes are
// written — a client can retry immediately against another slot instead
// of queueing behind an unbounded stream.
func (s *Server) handleSessionRounds(w http.ResponseWriter, req *http.Request) {
	ss, err := s.getSession(req.PathValue("id"))
	if err != nil {
		s.fail(w, err)
		return
	}
	if err := ss.begin(s.clock.Now()); err != nil {
		s.fail(w, err)
		return
	}
	defer func() { ss.end(s.clock.Now()) }()
	ctx, cancel := s.requestContext(req)
	defer cancel()
	err = s.pool.TryDo(func() error {
		s.streamRounds(ctx, w, req, ss)
		return nil
	})
	if err != nil {
		// ErrBusy: nothing has been written yet, a clean 429 goes out.
		s.metrics.ReqBusy.Add(1)
		s.fail(w, err)
	}
}

func (s *Server) streamRounds(ctx context.Context, w http.ResponseWriter, req *http.Request, ss *session) {
	_, span := obs.StartSpan(ctx, "serve.stream_rounds")
	defer span.End()
	span.SetAttr("session", ss.id)
	rc := http.NewResponseController(w)
	// NDJSON in, NDJSON out on one request: without full duplex the
	// HTTP/1.x server closes an unconsumed request body as soon as the
	// response starts (half-duplex), killing the stream mid-flight.
	// HTTP/2 is always full duplex; there the call is a no-op.
	_ = rc.EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	// Push the headers out before blocking on input: interactive clients
	// see the 200 (and can start writing rounds) immediately.
	_ = rc.Flush()
	enc := json.NewEncoder(w)
	req.Body = http.MaxBytesReader(w, req.Body, s.maxBody)
	sc := bufio.NewScanner(req.Body)
	sc.Buffer(make([]byte, 64<<10), 4<<20)

	// Verdicts are flushed once per input line, not once per verdict: a
	// client waiting on the rounds it just sent still sees them as soon
	// as the batch is solved, but a 100-round batch costs one socket
	// flush instead of 100 — the flush-per-verdict version spent more
	// time in syscalls than in the solver.
	writeLine := func(v any) bool {
		return enc.Encode(v) == nil
	}
	// Verdicts take the hand-rolled encoder (byte-identical output, no
	// reflection walk) with one reused buffer; non-finite values fall
	// back to encoding/json so they fail exactly as before.
	var vbuf []byte
	writeVerdict := func(v *StreamVerdict) bool {
		b, ok := appendStreamVerdict(vbuf[:0], v)
		vbuf = b[:0]
		if !ok {
			return writeLine(v)
		}
		_, err := w.Write(b)
		return err == nil
	}
	flush := func() { _ = rc.Flush() }
	fail := func(round int, err error) {
		s.metrics.ReqErrors.Add(1)
		writeLine(StreamError{Round: round, Error: err.Error()})
		flush()
	}

	rounds, alarms := 0, 0
	reqID := obs.RequestID(ctx)
	traceID := obs.TraceID(ctx)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var in StreamRound
		if !parseStreamRound(line, &in) {
			in = StreamRound{}
			if err := json.Unmarshal(line, &in); err != nil {
				fail(rounds, fmt.Errorf("%w: invalid NDJSON line: %v", ErrBadRequest, err))
				return
			}
		}
		sys, digest, alpha, closed := ss.snapshot()
		if closed {
			fail(rounds, fmt.Errorf("%w: session %s closed mid-stream", ErrGone, ss.id))
			return
		}
		// Bind the topology's observatory per line: a path mutation that
		// changed the session digest resets attribution and bumps the
		// epoch at the next batch boundary; otherwise this is a map
		// lookup plus a string compare.
		var fo *forensics.Observatory
		if s.forensics != nil {
			fo = s.forensics.Bind(ss.topo, digest, sys.CSR(), alpha)
		}
		ys, err := in.batch(sys.NumPaths())
		if err != nil {
			fail(rounds, err)
			return
		}
		vecs := toVectors(ys)
		t0 := s.clock.Now()
		xhats, err := sys.EstimateBatchCtx(ctx, vecs)
		if err != nil {
			fail(rounds, fmt.Errorf("%w: %v", ErrBadRequest, err))
			return
		}
		perRound := s.clock.Now().Sub(t0) / time.Duration(len(vecs))
		for i, xhat := range xhats {
			res, err := sys.Residual(xhat, vecs[i])
			if err != nil {
				fail(rounds, fmt.Errorf("%w: %v", ErrBadRequest, err))
				return
			}
			// The paper's consistency check (Eq. 23), strict like
			// detect.Inspect: alarm iff ‖R·x̂ − y‖₁ > α.
			rn := res.Norm1()
			detected := rn > alpha
			if detected {
				alarms++
			}
			s.metrics.RoundLatency.ObserveDuration(perRound)
			if fo != nil {
				fo.Ingest(forensics.Round{
					Req:      reqID,
					Seq:      rounds,
					TraceID:  traceID,
					Detected: detected,
					Norm:     rn,
					Residual: res,
				})
			}
			v := StreamVerdict{Round: rounds, Detected: detected, ResidualNorm: rn}
			if in.wantXHat() {
				v.XHat = xhat
			}
			if !writeVerdict(&v) {
				// Client went away mid-stream; account what was served.
				s.finishStream(ss, rounds, alarms)
				return
			}
			rounds++
		}
		flush()
	}
	if err := sc.Err(); err != nil {
		fail(rounds, fmt.Errorf("%w: reading stream: %v", ErrBadRequest, err))
		s.finishStream(ss, rounds, alarms)
		return
	}
	writeLine(StreamSummary{Done: true, Rounds: rounds, Alarms: alarms})
	flush()
	s.finishStream(ss, rounds, alarms)
}

// finishStream folds one stream's accounting into the session and the
// daemon metrics.
func (s *Server) finishStream(ss *session, rounds, alarms int) {
	if rounds == 0 && alarms == 0 {
		return
	}
	ss.mu.Lock()
	ss.rounds += int64(rounds)
	ss.alarms += int64(alarms)
	ss.mu.Unlock()
	s.metrics.SessionRounds.Add(int64(rounds))
	s.metrics.SessionAlarms.Add(int64(alarms))
}

func (s *Server) handleSessionPaths(w http.ResponseWriter, req *http.Request) {
	ss, err := s.getSession(req.PathValue("id"))
	if err != nil {
		s.fail(w, err)
		return
	}
	var pr SessionPathsRequest
	if !s.decode(w, req, &pr) {
		return
	}
	if (pr.Add == nil) == (pr.Remove == nil) {
		s.fail(w, fmt.Errorf("%w: provide exactly one of add and remove", ErrBadRequest))
		return
	}
	if !ss.touch(s.clock.Now()) {
		s.fail(w, fmt.Errorf("%w: session %s closed", ErrGone, ss.id))
		return
	}
	ctx, cancel := s.requestContext(req)
	defer cancel()
	var resp SessionPathsResponse
	err = s.pool.Do(ctx, func() error {
		// The session mutex is held across the whole derivation: path
		// mutations serialize against each other, and a concurrent round
		// stream keeps serving its current snapshot until the next batch
		// boundary.
		ss.mu.Lock()
		defer ss.mu.Unlock()
		if ss.closed {
			return fmt.Errorf("%w: session %s closed", ErrGone, ss.id)
		}
		var (
			ns   *tomo.System
			info tomo.PathUpdateInfo
			err  error
		)
		if pr.Add != nil {
			p, werr := walkPath(ss.sys.Graph(), pr.Add)
			if werr != nil {
				return werr
			}
			ns, info, err = ss.sys.AddPathCtx(ctx, p)
		} else {
			i := *pr.Remove
			ns, info, err = ss.sys.RemovePathCtx(ctx, i)
		}
		if err != nil {
			if errors.Is(err, tomo.ErrNotIdentifiable) {
				return err
			}
			return fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		ss.sys = ns
		ss.digest = ns.Digest()
		ss.mutations++
		s.metrics.PathMutations.With(info.Method).Add(1)
		resp = SessionPathsResponse{
			Session:  ss.id,
			NumPaths: ns.NumPaths(),
			Digest:   ss.digest,
			Method:   info.Method,
		}
		return nil
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// getSession resolves a session ID, lazily expiring a session whose
// idle timeout has already elapsed (the periodic reaper is the
// belt; this is the suspenders).
func (s *Server) getSession(id string) (*session, error) {
	ss, err := s.sessions.get(id)
	if err != nil {
		return nil, err
	}
	if s.idle >= 0 {
		now := s.clock.Now()
		ss.mu.Lock()
		expired := ss.inFlight == 0 && !ss.closed && now.Sub(ss.last) > s.idle
		if expired {
			ss.closed = true
		}
		ss.mu.Unlock()
		if expired {
			s.sessions.mu.Lock()
			delete(s.sessions.m, id)
			s.sessions.mu.Unlock()
			s.metrics.SessionsReaped.Add(1)
			return nil, fmt.Errorf("%w: session %q idle past %v", ErrGone, id, s.idle)
		}
	}
	return ss, nil
}

// walkPath resolves a node-name walk against the session's topology,
// exactly like the registration wire format does.
func walkPath(g *graph.Graph, names []string) (graph.Path, error) {
	if len(names) < 2 {
		return graph.Path{}, fmt.Errorf("%w: path has %d nodes, want ≥ 2", ErrBadRequest, len(names))
	}
	var p graph.Path
	for i, n := range names {
		v, ok := g.NodeByName(n)
		if !ok {
			return graph.Path{}, fmt.Errorf("%w: unknown node %q", ErrBadRequest, n)
		}
		p.Nodes = append(p.Nodes, v)
		if i > 0 {
			l, ok := g.LinkBetween(p.Nodes[i-1], v)
			if !ok {
				return graph.Path{}, fmt.Errorf("%w: no link %q–%q", ErrBadRequest, names[i-1], n)
			}
			p.Links = append(p.Links, l)
		}
	}
	return p, nil
}

// toVectors views JSON float slices as la vectors (no copy).
func toVectors(ys [][]float64) []la.Vector {
	out := make([]la.Vector, len(ys))
	for i, y := range ys {
		out[i] = y
	}
	return out
}
