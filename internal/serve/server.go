// Package serve is the service core of tomographyd: a long-lived,
// concurrent tomography-inference daemon. It keeps registered
// measurement configurations (topology + paths) behind a digest-keyed
// solver cache, so every steady-state estimate is a single matvec
// against an operator materialized once at registration, and it runs the
// paper's scapegoat consistency check (‖R·x̂ − y'‖₁ > α, Eq. 23 /
// Remark 4) on every inspected measurement round.
//
// The HTTP/JSON API:
//
//	POST /v1/topologies                    register {name, edges, paths, alpha}
//	GET  /v1/topologies/{name}/forensics   residual analytics + suspected links + exemplars
//	POST /v1/estimate                      {topology, y | rounds} → x̂ per round
//	POST /v1/inspect                       {topology, y | rounds, alpha?} → detector verdicts
//	GET  /healthz                          liveness + registry size
//	GET  /metrics                          Prometheus text exposition
//	GET  /debug/traces                     last N completed request traces as JSON
//	GET  /debug/pprof/                     net/http/pprof profiles
//
// Solver work fans out over a bounded worker pool with per-request
// timeouts; saturated or expired requests are shed with 503. Every API
// request runs under an instrumentation middleware (internal/obs):
// request counter, request ID, a trace root span wrapping the hot path
// end-to-end, and one structured log line.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/forensics"
	"repro/internal/la"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/tomo"
)

// Config parameterizes a Server.
type Config struct {
	// Workers bounds concurrent solver work; 0 means DefaultWorkers.
	Workers int
	// RequestTimeout caps each request's time in queue plus solve; 0
	// means DefaultRequestTimeout, negative disables the timeout.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies; 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// Logger receives one structured line per API request (route,
	// request ID, status, duration); nil discards logs.
	Logger *slog.Logger
	// Clock drives request timing and trace timestamps; nil means the
	// wall clock. Tests inject obs.FakeClock to golden-compare traces.
	Clock obs.Clock
	// TraceCapacity bounds the completed-trace ring buffer served at
	// /debug/traces; 0 means obs.DefaultTraceCapacity.
	TraceCapacity int
	// SessionIdleTimeout is how long a round session may sit idle before
	// the reaper removes it; 0 means DefaultSessionIdleTimeout, negative
	// disables reaping.
	SessionIdleTimeout time.Duration
	// ForensicsExemplars bounds the worst-residual exemplar store each
	// topology's forensic observatory keeps; 0 means
	// forensics.DefaultExemplarK.
	ForensicsExemplars int
	// DisableForensics turns the forensic observatory off entirely: no
	// per-round ingestion, no residual/suspicion metric families, and
	// the forensics endpoint answers 404. Exists for operators who want
	// the absolute minimum hot-path cost, and as the baseline arm of the
	// forensics-overhead benchmark.
	DisableForensics bool
}

// Defaults for Config zero values.
const (
	DefaultWorkers        = 8
	DefaultRequestTimeout = 5 * time.Second
	DefaultMaxBodyBytes   = 16 << 20
)

// Server wires the registry, worker pool, metrics, tracer, and logger
// behind an http.Handler. Create with New, mount Handler on an
// http.Server.
type Server struct {
	reg     *Registry
	pool    *Pool
	metrics *Metrics
	tracer  *obs.Tracer
	log     *slog.Logger
	clock   obs.Clock
	timeout time.Duration
	maxBody int64
	start   time.Time
	reqSeq  atomic.Int64

	sessions *sessionTable
	idle     time.Duration

	forensics *forensics.Table

	// Replication state (EnableReplication); zero values mean a
	// standalone daemon with no replication surface.
	role      atomic.Int32
	replStore *store.Store
	replLag   atomic.Uint64
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.Workers == 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.Clock == nil {
		cfg.Clock = obs.WallClock()
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.DiscardLogger()
	}
	if cfg.SessionIdleTimeout == 0 {
		cfg.SessionIdleTimeout = DefaultSessionIdleTimeout
	}
	m := NewMetrics()
	tracer := obs.NewTracer(cfg.Clock, cfg.TraceCapacity)
	// Every finished span doubles as a per-stage latency sample.
	tracer.OnSpanEnd(m.ObserveStage)
	reg := NewRegistry(m)
	m.trackRegistry(reg)
	var ft *forensics.Table
	if !cfg.DisableForensics {
		ft = forensics.NewTable(forensics.Config{ExemplarK: cfg.ForensicsExemplars})
		reg.AttachForensics(ft)
	}
	srv := &Server{
		reg:       reg,
		pool:      NewPool(cfg.Workers),
		metrics:   m,
		tracer:    tracer,
		log:       cfg.Logger,
		clock:     cfg.Clock,
		timeout:   cfg.RequestTimeout,
		maxBody:   cfg.MaxBodyBytes,
		start:     cfg.Clock.Now(),
		sessions:  newSessionTable(),
		idle:      cfg.SessionIdleTimeout,
		forensics: ft,
	}
	m.trackSessions(srv.sessions)
	if ft != nil {
		m.trackForensics(ft)
	}
	return srv
}

// Registry exposes the registry for in-process preloading (the daemon's
// -preload flag and the example client register built-in topologies
// without going through the wire format).
func (s *Server) Registry() *Registry { return s.reg }

// Metrics exposes the server's metrics (read-mostly; handlers write).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Tracer exposes the server's trace collector.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Forensics exposes the per-topology forensic observatory table.
func (s *Server) Forensics() *forensics.Table { return s.forensics }

// Handler returns the daemon's routing table. API routes run under the
// instrumentation middleware (request counter, request ID, root span,
// structured log line); the /debug/* endpoints are deliberately
// uninstrumented so that pulling traces or profiles never perturbs the
// request counters or the trace ring buffer.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/topologies", s.instrument("topologies", s.metrics.ReqTopologies, s.handleTopologies))
	mux.HandleFunc("DELETE /v1/topologies/{name}", s.instrument("evict", s.metrics.ReqEvict, s.handleEvict))
	mux.HandleFunc("GET /v1/topologies/{name}/forensics", s.instrument("forensics", s.metrics.ReqForensics, s.handleForensics))
	mux.HandleFunc("POST /v1/estimate", s.instrument("estimate", s.metrics.ReqEstimate, s.handleEstimate))
	mux.HandleFunc("POST /v1/inspect", s.instrument("inspect", s.metrics.ReqInspect, s.handleInspect))
	mux.HandleFunc("POST /v1/sessions", s.instrument("sessions", s.metrics.ReqSessions, s.handleSessionCreate))
	mux.HandleFunc("GET /v1/sessions/{id}", s.instrument("session_get", s.metrics.ReqSessionGet, s.handleSessionGet))
	mux.HandleFunc("POST /v1/sessions/{id}/rounds", s.instrument("rounds", s.metrics.ReqRounds, s.handleSessionRounds))
	mux.HandleFunc("POST /v1/sessions/{id}/paths", s.instrument("session_paths", s.metrics.ReqSessionPaths, s.handleSessionPaths))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.instrument("session_delete", s.metrics.ReqSessionDelete, s.handleSessionDelete))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.metrics.ReqHealthz, s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.metrics.ReqMetrics, s.handleMetrics))
	// Replication endpoints are uninstrumented like /debug/*: fleet
	// plumbing must not perturb the request counters the load
	// generator reconciles (dedicated replication counters track it).
	mux.HandleFunc("GET /v1/replication/wal", s.handleReplicationWAL)
	mux.HandleFunc("POST /v1/replication/promote", s.handleReplicationPromote)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// statusWriter records the response status for the middleware's span
// attribute and log line.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap supports http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// instrument wraps one API route: it counts the hit, assigns a request
// ID (honouring an incoming X-Request-Id so clients can correlate,
// minting req-%08d otherwise), opens the trace root span, and emits one
// structured log line when the handler returns. The request counter is
// incremented before the handler runs, so a /metrics scrape observes
// its own hit.
func (s *Server) instrument(route string, counter *obs.Counter, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		counter.Inc()
		id := req.Header.Get("X-Request-Id")
		if id == "" {
			id = fmt.Sprintf("req-%08d", s.reqSeq.Add(1))
		}
		ctx := obs.WithRequestID(req.Context(), id)
		ctx, span := s.tracer.StartRoot(ctx, "http."+route)
		span.SetAttr("req_id", id)
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, req.WithContext(ctx))
		status := sw.status()
		span.SetInt("status", status)
		span.End()
		level := slog.LevelInfo
		switch {
		case status >= 500:
			level = slog.LevelError
		case status >= 400:
			level = slog.LevelWarn
		}
		s.log.Log(req.Context(), level, "request",
			"route", route, "req_id", id, "status", status, "dur", span.Duration())
	}
}

// --- Wire types ---------------------------------------------------------

// TopologyRequest is the body of POST /v1/topologies.
type TopologyRequest struct {
	// Name keys the configuration for later estimate/inspect calls.
	Name string `json:"name"`
	// Edges are undirected links as [from, to] node-name pairs; nodes
	// are created on first mention.
	Edges [][]string `json:"edges"`
	// Paths are measurement paths as node-name walks over the edges.
	Paths [][]string `json:"paths"`
	// Alpha is the detection threshold; 0 selects the paper's default.
	Alpha float64 `json:"alpha,omitempty"`
}

// TopologyResponse describes a successful registration.
type TopologyResponse struct {
	Name         string  `json:"name"`
	Digest       string  `json:"digest"`
	NumLinks     int     `json:"numLinks"`
	NumPaths     int     `json:"numPaths"`
	Identifiable bool    `json:"identifiable"`
	Alpha        float64 `json:"alpha"`
	SolverCached bool    `json:"solverCached"`
}

// EvictResponse is the body of a successful DELETE /v1/topologies/{name}.
type EvictResponse struct {
	Name   string `json:"name"`
	Digest string `json:"digest"`
}

// RoundsRequest is the shared body of POST /v1/estimate and
// POST /v1/inspect: one measurement vector in Y, or a batch in Rounds.
type RoundsRequest struct {
	Topology string      `json:"topology"`
	Y        []float64   `json:"y,omitempty"`
	Rounds   [][]float64 `json:"rounds,omitempty"`
	// Alpha optionally overrides the registered detection threshold
	// (inspect only; 0 keeps the registered value).
	Alpha float64 `json:"alpha,omitempty"`
}

// rounds normalizes the single/batched forms into one slice.
func (rr *RoundsRequest) rounds() ([]la.Vector, error) {
	if (rr.Y == nil) == (rr.Rounds == nil) {
		return nil, fmt.Errorf("%w: provide exactly one of y and rounds", ErrBadRequest)
	}
	if rr.Y != nil {
		return []la.Vector{rr.Y}, nil
	}
	out := make([]la.Vector, len(rr.Rounds))
	for i, y := range rr.Rounds {
		if y == nil {
			return nil, fmt.Errorf("%w: rounds[%d] is null", ErrBadRequest, i)
		}
		out[i] = y
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: empty rounds", ErrBadRequest)
	}
	return out, nil
}

// EstimateResult is one round's tomography outcome.
type EstimateResult struct {
	XHat []float64 `json:"xhat"`
}

// EstimateResponse is the body of a successful POST /v1/estimate.
type EstimateResponse struct {
	Topology string           `json:"topology"`
	Results  []EstimateResult `json:"results"`
}

// InspectVerdict is one round's detector outcome.
type InspectVerdict struct {
	Detected     bool    `json:"detected"`
	ResidualNorm float64 `json:"residualNorm"`
	SquareR      bool    `json:"squareR,omitempty"`
}

// InspectResponse is the body of a successful POST /v1/inspect.
type InspectResponse struct {
	Topology string           `json:"topology"`
	Alpha    float64          `json:"alpha"`
	Alarms   int              `json:"alarms"`
	Reports  []InspectVerdict `json:"reports"`
}

// HealthResponse is the body of GET /healthz. The replication fields
// appear only on shards running under a role (EnableReplication) —
// a standalone daemon keeps the legacy three-field body byte-for-byte,
// so pre-cluster health checks never see a schema change.
type HealthResponse struct {
	Status        string   `json:"status"`
	Topologies    []string `json:"topologies"`
	UptimeSeconds float64  `json:"uptimeSeconds"`
	// Role is "primary" or "follower" (omitted standalone).
	Role string `json:"role,omitempty"`
	// AppliedSeq is the last WAL sequence applied on this shard.
	AppliedSeq uint64 `json:"appliedSeq,omitempty"`
	// ReplicationLag is how many WAL records this follower trails its
	// primary by (followers only; 0 when caught up).
	ReplicationLag *uint64 `json:"replicationLag,omitempty"`
}

// TracesResponse is the body of GET /debug/traces: the last N completed
// request traces, oldest first, plus ring-buffer accounting.
type TracesResponse struct {
	Capacity int             `json:"capacity"`
	Dropped  int64           `json:"dropped"`
	Traces   []obs.TraceDump `json:"traces"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// --- Handlers -----------------------------------------------------------

func (s *Server) handleTopologies(w http.ResponseWriter, req *http.Request) {
	if s.rejectFollower(w) {
		return
	}
	var tr TopologyRequest
	if !s.decode(w, req, &tr) {
		return
	}
	ctx, cancel := s.requestContext(req)
	defer cancel()
	var entry *Entry
	err := s.pool.Do(ctx, func() error {
		e, err := s.reg.RegisterCtx(ctx, tr.Name, tr.Edges, tr.Paths, tr.Alpha)
		entry = e
		return err
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, TopologyResponse{
		Name:         entry.Name,
		Digest:       entry.Digest,
		NumLinks:     entry.Sys.NumLinks(),
		NumPaths:     entry.Sys.NumPaths(),
		Identifiable: true, // registration factors R; rank deficiency was rejected
		Alpha:        entry.Det.Alpha(),
		SolverCached: entry.CacheHit,
	})
}

func (s *Server) handleEvict(w http.ResponseWriter, req *http.Request) {
	if s.rejectFollower(w) {
		return
	}
	entry, err := s.reg.Evict(req.PathValue("name"))
	if err != nil {
		s.fail(w, err)
		return
	}
	s.metrics.Evictions.Add(1)
	s.writeJSON(w, http.StatusOK, EvictResponse{Name: entry.Name, Digest: entry.Digest})
}

func (s *Server) handleEstimate(w http.ResponseWriter, req *http.Request) {
	var rr RoundsRequest
	if !s.decode(w, req, &rr) {
		return
	}
	rounds, err := rr.rounds()
	if err != nil {
		s.fail(w, err)
		return
	}
	entry, err := s.lookup(req.Context(), rr.Topology)
	if err != nil {
		s.fail(w, err)
		return
	}
	ctx, cancel := s.requestContext(req)
	defer cancel()
	results := make([]EstimateResult, len(rounds))
	err = s.pool.Do(ctx, func() error {
		for i, y := range rounds {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("%w after %d/%d rounds: %v", ErrSaturated, i, len(rounds), err)
			}
			t0 := s.clock.Now()
			xhat, err := entry.Sys.EstimateCtx(ctx, y)
			if err != nil {
				return fmt.Errorf("%w: round %d: %v", ErrBadRequest, i, err)
			}
			s.metrics.ObserveEstimate(s.clock.Now().Sub(t0))
			s.metrics.EstimateRounds.Add(1)
			results[i] = EstimateResult{XHat: xhat}
		}
		return nil
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, EstimateResponse{Topology: entry.Name, Results: results})
}

func (s *Server) handleInspect(w http.ResponseWriter, req *http.Request) {
	var rr RoundsRequest
	if !s.decode(w, req, &rr) {
		return
	}
	rounds, err := rr.rounds()
	if err != nil {
		s.fail(w, err)
		return
	}
	entry, err := s.lookup(req.Context(), rr.Topology)
	if err != nil {
		s.fail(w, err)
		return
	}
	det := entry.Det
	if rr.Alpha != 0 {
		if rr.Alpha < 0 {
			s.fail(w, fmt.Errorf("%w: negative alpha %g", ErrBadRequest, rr.Alpha))
			return
		}
		// WithAlpha (not a fresh detect.New) keeps the forensic observer
		// wired: alpha-override rounds still land in the observatory.
		override, err := entry.Det.WithAlpha(rr.Alpha)
		if err != nil {
			s.fail(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
			return
		}
		det = override
	}
	ctx, cancel := s.requestContext(req)
	defer cancel()
	reports := make([]InspectVerdict, len(rounds))
	alarms := 0
	reqID := obs.RequestID(ctx)
	err = s.pool.Do(ctx, func() error {
		for i, y := range rounds {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("%w after %d/%d rounds: %v", ErrSaturated, i, len(rounds), err)
			}
			t0 := s.clock.Now()
			// Rounds of one batched request share an X-Request-Id; the
			// #index suffix keeps them distinguishable as exemplars.
			rctx := obs.WithRequestID(ctx, fmt.Sprintf("%s#%d", reqID, i))
			rep, err := det.InspectCtx(rctx, y)
			if err != nil {
				return fmt.Errorf("%w: round %d: %v", ErrBadRequest, i, err)
			}
			s.metrics.ObserveEstimate(s.clock.Now().Sub(t0))
			s.metrics.InspectRounds.Add(1)
			if rep.Detected {
				alarms++
				s.metrics.Alarms.Add(1)
			}
			reports[i] = InspectVerdict{
				Detected:     rep.Detected,
				ResidualNorm: rep.ResidualNorm,
				SquareR:      rep.SquareR,
			}
		}
		return nil
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, InspectResponse{
		Topology: entry.Name,
		Alpha:    det.Alpha(),
		Alarms:   alarms,
		Reports:  reports,
	})
}

// handleForensics serves one topology's forensic snapshot: residual
// quantiles, top suspected links, alarm bursts, and worst-residual
// exemplars whose trace IDs resolve in /debug/traces. Eviction unbinds
// the observatory with the entry, so an unregistered name answers 404
// here and a re-registration starts a fresh observatory at epoch zero.
func (s *Server) handleForensics(w http.ResponseWriter, req *http.Request) {
	name := req.PathValue("name")
	if s.forensics == nil {
		s.fail(w, fmt.Errorf("%w: forensics disabled", ErrNotFound))
		return
	}
	snap, ok := s.forensics.Snapshot(name)
	if !ok {
		s.fail(w, fmt.Errorf("%w: %q", ErrNotFound, name))
		return
	}
	s.writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	hr := HealthResponse{
		Status:        "ok",
		Topologies:    s.reg.Names(),
		UptimeSeconds: s.clock.Now().Sub(s.start).Seconds(),
	}
	if role := s.Role(); role != RoleNone {
		hr.Role = role.String()
		hr.AppliedSeq = s.replStore.LastSeq()
		if role == RoleFollower {
			lag := s.ReplicationLag()
			hr.ReplicationLag = &lag
		}
	}
	s.writeJSON(w, http.StatusOK, hr)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}

func (s *Server) handleTraces(w http.ResponseWriter, req *http.Request) {
	n := 0
	if q := req.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("serve: bad n %q", q)})
			return
		}
		n = v
	}
	s.writeJSON(w, http.StatusOK, TracesResponse{
		Capacity: s.tracer.Capacity(),
		Dropped:  s.tracer.Dropped(),
		Traces:   s.tracer.Dump(n),
	})
}

// lookup resolves a topology under a "registry.get" span, so the cache
// lookup stage shows up in request traces.
func (s *Server) lookup(ctx context.Context, name string) (*Entry, error) {
	_, span := obs.StartSpan(ctx, "registry.get")
	defer span.End()
	span.SetAttr("topology", name)
	entry, err := s.reg.Get(name)
	span.SetBool("found", err == nil)
	return entry, err
}

// --- Plumbing -----------------------------------------------------------

func (s *Server) requestContext(req *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout < 0 {
		return context.WithCancel(req.Context())
	}
	return context.WithTimeout(req.Context(), s.timeout)
}

func (s *Server) decode(w http.ResponseWriter, req *http.Request, into any) bool {
	if req.ContentLength > s.maxBody {
		s.fail(w, fmt.Errorf("%w: body is %d bytes, limit %d", ErrTooLarge, req.ContentLength, s.maxBody))
		return false
	}
	req.Body = http.MaxBytesReader(w, req.Body, s.maxBody)
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.fail(w, fmt.Errorf("%w: body exceeds %d bytes", ErrTooLarge, mbe.Limit))
			return false
		}
		s.fail(w, fmt.Errorf("%w: invalid JSON body: %v", ErrBadRequest, err))
		return false
	}
	return true
}

func (s *Server) fail(w http.ResponseWriter, err error) {
	s.metrics.ReqErrors.Add(1)
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrConflict):
		status = http.StatusConflict
	case errors.Is(err, ErrTooLarge):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrGone):
		status = http.StatusGone
	case errors.Is(err, ErrBusy):
		status = http.StatusTooManyRequests
	case errors.Is(err, tomo.ErrNotIdentifiable):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, ErrSaturated):
		status = http.StatusServiceUnavailable
		s.metrics.ReqRejected.Add(1)
	case errors.Is(err, ErrStore):
		// The journal refused the mutation; nothing was applied. 500:
		// the request was valid, the daemon's disk is the problem.
		status = http.StatusInternalServerError
	case errors.Is(err, ErrFollower):
		// A write reached a follower shard. 421 Misdirected Request:
		// the router should re-send it to the group's primary.
		status = http.StatusMisdirectedRequest
	}
	s.writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	// Encoding failures here mean a broken connection; nothing to do.
	_ = enc.Encode(body)
}
