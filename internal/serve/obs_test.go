package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"repro/internal/obs"
)

// get fetches path and returns the response plus the full body.
func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestMetricsExpositionLint drives real traffic through the daemon and
// then runs the exposition-format linter over a live /metrics scrape:
// HELP/TYPE pairing, series uniqueness, and histogram invariants must
// all hold on the real output, not just on hand-written fixtures.
func TestMetricsExpositionLint(t *testing.T) {
	edges, paths, _, sys := fig1Wire(t)
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, raw := postJSON(t, ts, "/v1/topologies", TopologyRequest{Name: "fig1", Edges: edges, Paths: paths}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, raw)
	}
	y := make([]float64, sys.NumPaths())
	if resp, raw := postJSON(t, ts, "/v1/estimate", RoundsRequest{Topology: "fig1", Y: y}); resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: %d %s", resp.StatusCode, raw)
	}
	if resp, raw := postJSON(t, ts, "/v1/inspect", RoundsRequest{Topology: "fig1", Y: y}); resp.StatusCode != http.StatusOK {
		t.Fatalf("inspect: %d %s", resp.StatusCode, raw)
	}
	get(t, ts, "/healthz")

	_, raw := get(t, ts, "/metrics")
	text := string(raw)
	for _, err := range obs.Lint(text) {
		t.Errorf("lint: %v", err)
	}
	for _, want := range []string{
		`tomographyd_requests_total{route="estimate"} 1`,
		`tomographyd_requests_total{route="healthz"} 1`,
		// The scrape we are inspecting counted itself.
		`tomographyd_requests_total{route="metrics"} 1`,
		`tomographyd_stage_latency_seconds_bucket{stage="http.estimate",le="+Inf"} 1`,
		`tomographyd_stage_latency_seconds_bucket{stage="tomo.solve",le="+Inf"} 2`,
		"tomographyd_estimate_latency_seconds_count 2",
		"go_goroutines",
		"go_gc_cycles_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestDebugTracesEndpoint exercises the trace ring over HTTP: the last
// TraceCapacity traces are retained oldest-first, eviction is counted,
// ?n limits the dump, and a bad n is a 400. /debug requests themselves
// must not produce traces.
func TestDebugTracesEndpoint(t *testing.T) {
	srv := New(Config{TraceCapacity: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 6; i++ {
		get(t, ts, "/healthz")
	}
	resp, raw := get(t, ts, "/debug/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces: %d %s", resp.StatusCode, raw)
	}
	var tr TracesResponse
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Capacity != 4 || tr.Dropped != 2 || len(tr.Traces) != 4 {
		t.Fatalf("got capacity=%d dropped=%d traces=%d, want 4/2/4", tr.Capacity, tr.Dropped, len(tr.Traces))
	}
	for i, d := range tr.Traces {
		if d.Root.Name != "http.healthz" {
			t.Errorf("trace %d root = %q, want http.healthz", i, d.Root.Name)
		}
	}
	// Oldest first: IDs ascend.
	for i := 1; i < len(tr.Traces); i++ {
		if tr.Traces[i].ID <= tr.Traces[i-1].ID {
			t.Errorf("trace IDs not ascending: %d then %d", tr.Traces[i-1].ID, tr.Traces[i].ID)
		}
	}

	_, raw = get(t, ts, "/debug/traces?n=2")
	var limited TracesResponse
	if err := json.Unmarshal(raw, &limited); err != nil {
		t.Fatal(err)
	}
	if len(limited.Traces) != 2 {
		t.Fatalf("?n=2 returned %d traces", len(limited.Traces))
	}

	if resp, _ := get(t, ts, "/debug/traces?n=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n: status %d, want 400", resp.StatusCode)
	}

	// Reading traces/pprof must not have appended traces (the /debug
	// routes are uninstrumented by design).
	_, raw = get(t, ts, "/debug/traces")
	var again TracesResponse
	if err := json.Unmarshal(raw, &again); err != nil {
		t.Fatal(err)
	}
	if again.Dropped != 2 || len(again.Traces) != 4 {
		t.Errorf("debug scrapes perturbed the ring: dropped=%d traces=%d", again.Dropped, len(again.Traces))
	}
	for _, d := range again.Traces {
		if strings.HasPrefix(d.Root.Name, "http.debug") {
			t.Errorf("found a trace for a /debug route: %q", d.Root.Name)
		}
	}
}

// TestEstimateTraceStructure checks that one estimate request produces
// a trace whose root wraps the registry lookup and the solve, with the
// request ID attached.
func TestEstimateTraceStructure(t *testing.T) {
	edges, paths, _, sys := fig1Wire(t)
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, raw := postJSON(t, ts, "/v1/topologies", TopologyRequest{Name: "fig1", Edges: edges, Paths: paths}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, raw)
	}
	if resp, raw := postJSON(t, ts, "/v1/estimate", RoundsRequest{Topology: "fig1", Y: make([]float64, sys.NumPaths())}); resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: %d %s", resp.StatusCode, raw)
	}

	dumps := srv.Tracer().Dump(1)
	if len(dumps) != 1 {
		t.Fatalf("got %d traces, want 1", len(dumps))
	}
	root := dumps[0].Root
	if root.Name != "http.estimate" {
		t.Fatalf("root = %q, want http.estimate", root.Name)
	}
	if root.Attrs["status"] != "200" || root.Attrs["req_id"] == "" {
		t.Errorf("root attrs = %v, want status=200 and a req_id", root.Attrs)
	}
	var names []string
	for _, c := range root.Children {
		names = append(names, c.Name)
	}
	if len(names) != 2 || names[0] != "registry.get" || names[1] != "tomo.solve" {
		t.Fatalf("children = %v, want [registry.get tomo.solve]", names)
	}
	if root.Children[0].Attrs["topology"] != "fig1" || root.Children[0].Attrs["found"] != "true" {
		t.Errorf("registry.get attrs = %v", root.Children[0].Attrs)
	}
}

// TestRequestIDHeader pins the correlation contract: an incoming
// X-Request-Id is echoed back; absent one, the server mints req-%08d.
func TestRequestIDHeader(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "corr-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "corr-42" {
		t.Errorf("echoed id = %q, want corr-42", got)
	}

	resp, _ = get(t, ts, "/healthz")
	if got := resp.Header.Get("X-Request-Id"); !regexp.MustCompile(`^req-\d{8}$`).MatchString(got) {
		t.Errorf("minted id = %q, want req-%%08d form", got)
	}
}

// TestRequestLogging captures the structured log stream: one line per
// API request carrying route, request ID, and status, with client
// errors at WARN.
func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	srv := New(Config{Logger: obs.NewLogger(&buf, slog.LevelInfo, false)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "log-check")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Post(ts.URL+"/v1/estimate", "application/json", strings.NewReader("{broken"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	logs := buf.String()
	for _, want := range []string{
		"msg=request route=healthz req_id=log-check status=200",
		"level=WARN msg=request route=estimate",
		"status=400",
	} {
		if !strings.Contains(logs, want) {
			t.Errorf("logs missing %q in:\n%s", want, logs)
		}
	}
}

// TestPprofMounted verifies the profiling endpoints answer.
func TestPprofMounted(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		if resp, raw := get(t, ts, path); resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d body %.80s", path, resp.StatusCode, raw)
		}
	}
}
