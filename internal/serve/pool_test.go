package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolBoundsConcurrency(t *testing.T) {
	const slots = 3
	p := NewPool(slots)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < 24; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.Do(context.Background(), func() error {
				n := cur.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				cur.Add(-1)
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > slots {
		t.Errorf("peak concurrency %d exceeds %d slots", got, slots)
	}
}

func TestPoolShedsOnDeadline(t *testing.T) {
	p := NewPool(1)
	release := make(chan struct{})
	acquired := make(chan struct{})
	go func() {
		_ = p.Do(context.Background(), func() error {
			close(acquired)
			<-release
			return nil
		})
	}()
	<-acquired
	defer close(release)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := p.Do(ctx, func() error { return nil })
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
}

func TestPoolPropagatesFnError(t *testing.T) {
	p := NewPool(2)
	want := errors.New("boom")
	if err := p.Do(context.Background(), func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

func TestPoolMinimumSize(t *testing.T) {
	if got := NewPool(0).Size(); got != 1 {
		t.Errorf("NewPool(0).Size() = %d, want 1", got)
	}
	if got := NewPool(-3).Size(); got != 1 {
		t.Errorf("NewPool(-3).Size() = %d, want 1", got)
	}
}
