package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/store"
)

// openStore opens a store in dir with test-friendly options.
func openStore(t *testing.T, dir string, opts store.Options) *store.Store {
	t.Helper()
	st, err := store.Open(context.Background(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// restoreRegistry builds a fresh registry warm-started from dir.
func restoreRegistry(t *testing.T, dir string) (*Registry, *store.Store) {
	t.Helper()
	st := openStore(t, dir, store.Options{})
	reg := NewRegistry(NewMetrics())
	if _, err := reg.Restore(context.Background(), st.Recovered().Topologies); err != nil {
		t.Fatal(err)
	}
	reg.AttachStore(st)
	return reg, st
}

func TestRegistryPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	edges, paths, _, sys := fig1Wire(t)

	st := openStore(t, dir, store.Options{Fsync: store.FsyncAlways})
	reg := NewRegistry(NewMetrics())
	reg.AttachStore(st)
	// One registration through the wire format, one through an
	// already-built system (the preload path) — both must journal.
	wired, err := reg.Register("wire", edges, paths, 0)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := reg.RegisterSystem("direct", sys, 150)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("doomed", edges, paths, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Evict("doomed"); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	reg2, st2 := restoreRegistry(t, dir)
	defer st2.Close()
	names := reg2.Names()
	if len(names) != 2 || names[0] != "direct" || names[1] != "wire" {
		t.Fatalf("restored names %v, want [direct wire]", names)
	}
	for _, want := range []*Entry{wired, direct} {
		got, err := reg2.Get(want.Name)
		if err != nil {
			t.Fatal(err)
		}
		if got.Digest != want.Digest {
			t.Errorf("%s digest %s, want %s", want.Name, got.Digest, want.Digest)
		}
		if got.Det.Alpha() != want.Det.Alpha() {
			t.Errorf("%s alpha %g, want %g", want.Name, got.Det.Alpha(), want.Det.Alpha())
		}
	}
	// Evict-then-restart must not resurrect.
	if _, err := reg2.Get("doomed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("evicted topology resurrected: %v", err)
	}
	// Restored entries estimate identically to the originals: the
	// rebuilt routing matrix is digest-identical, so the operator is
	// the same matrix.
	y := make([]float64, sys.NumPaths())
	for i := range y {
		y[i] = float64(i + 1)
	}
	want, err := wired.Sys.Estimate(y)
	if err != nil {
		t.Fatal(err)
	}
	gotEntry, _ := reg2.Get("wire")
	got, err := gotEntry.Sys.Estimate(y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("estimate diverged after restart at link %d: %g vs %g", i, want[i], got[i])
		}
	}
}

func TestRestoreVerifiesDigest(t *testing.T) {
	edges, paths, _, _ := fig1Wire(t)
	reg := NewRegistry(NewMetrics())
	docs := []store.TopologyDoc{{
		Name: "tampered", Edges: edges, Paths: paths, Alpha: 0,
		Digest: "0000000000000000000000000000000000000000000000000000000000000000",
	}}
	n, err := reg.Restore(context.Background(), docs)
	if err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("restore accepted a digest mismatch (n=%d, err=%v)", n, err)
	}
	if reg.Len() != 0 && err == nil {
		t.Fatal("tampered topology left registered")
	}
}

// failingBackend journals nothing and fails on demand.
type failingBackend struct {
	registers, evicts int
	fail              bool
}

func (f *failingBackend) AppendRegister(store.TopologyDoc) error {
	f.registers++
	if f.fail {
		return errors.New("disk on fire")
	}
	return nil
}

func (f *failingBackend) AppendEvict(string) error {
	f.evicts++
	if f.fail {
		return errors.New("disk on fire")
	}
	return nil
}

func TestStoreFailureBlocksMutation(t *testing.T) {
	edges, paths, _, _ := fig1Wire(t)
	fb := &failingBackend{}
	reg := NewRegistry(NewMetrics())
	reg.AttachStore(fb)

	if _, err := reg.Register("ok", edges, paths, 0); err != nil {
		t.Fatal(err)
	}
	fb.fail = true
	// A registration the journal refuses must not become visible.
	if _, err := reg.Register("lost", edges, paths, 0); !errors.Is(err, ErrStore) {
		t.Fatalf("register err = %v, want ErrStore", err)
	}
	if _, err := reg.Get("lost"); !errors.Is(err, ErrNotFound) {
		t.Fatal("unjournaled registration became visible")
	}
	// An eviction the journal refuses must leave the entry live.
	if _, err := reg.Evict("ok"); !errors.Is(err, ErrStore) {
		t.Fatalf("evict err = %v, want ErrStore", err)
	}
	if _, err := reg.Get("ok"); err != nil {
		t.Fatal("entry vanished despite journal failure")
	}
	// Conflicts are checked before journaling: re-registering a live
	// name never reaches the backend.
	before := fb.registers
	if _, err := reg.Register("ok", edges, paths, 0); !errors.Is(err, ErrConflict) {
		t.Fatalf("conflict err = %v", err)
	}
	if fb.registers != before {
		t.Fatal("conflicting registration reached the journal")
	}
}

func TestTopologiesRegisteredGauge(t *testing.T) {
	edges, paths, _, _ := fig1Wire(t)
	srv := New(Config{})
	scrape := func() string {
		var b strings.Builder
		srv.Metrics().WritePrometheus(&b)
		return b.String()
	}
	if !strings.Contains(scrape(), "tomographyd_topologies_registered 0") {
		t.Fatalf("idle scrape missing zero gauge:\n%s", scrape())
	}
	if _, err := srv.Registry().Register("a", edges, paths, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Registry().Register("b", edges, paths, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(scrape(), "tomographyd_topologies_registered 2") {
		t.Fatalf("gauge did not track registrations:\n%s", scrape())
	}
	if _, err := srv.Registry().Evict("a"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(scrape(), "tomographyd_topologies_registered 1") {
		t.Fatalf("gauge did not track eviction:\n%s", scrape())
	}
}

// BenchmarkRegisterPersistence compares wire-format registration
// latency (the server-side work of POST /v1/topologies: build the
// system, digest it, adopt the cached solver, build the detector —
// plus, with a store attached, journal the mutation) without a store,
// with a -fsync=never store, and with -fsync=always. The acceptance
// bar is never ≤ 2x baseline. The solver cache is warmed first so no
// iteration pays a factorization.
func BenchmarkRegisterPersistence(b *testing.B) {
	edges, paths, _, _ := fig1Wire(b)
	run := func(b *testing.B, attach func(*Registry) func()) {
		reg := NewRegistry(NewMetrics())
		if _, err := reg.Register("warm", edges, paths, 0); err != nil {
			b.Fatal(err)
		}
		cleanup := attach(reg)
		if cleanup != nil {
			defer cleanup()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := reg.Register(fmt.Sprintf("n%d", i), edges, paths, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("baseline", func(b *testing.B) {
		run(b, func(*Registry) func() { return nil })
	})
	for _, policy := range []store.FsyncPolicy{store.FsyncNever, store.FsyncAlways} {
		b.Run("store-fsync="+policy.String(), func(b *testing.B) {
			run(b, func(reg *Registry) func() {
				// Compaction is disabled: its cost scales with the live
				// registry, which b.N distinct registrations inflate far
				// beyond any real deployment; snapshot folding is
				// benchmarked at realistic state sizes in internal/store.
				st, err := store.Open(context.Background(), b.TempDir(),
					store.Options{Fsync: policy, CompactThreshold: -1})
				if err != nil {
					b.Fatal(err)
				}
				reg.AttachStore(st)
				return func() { st.Close() }
			})
		})
	}
}
