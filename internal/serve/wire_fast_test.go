package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// edgeFloats are the values where ES6-style formatting switches shape:
// zero, sign, the 1e-6 / 1e21 format boundaries, shortest-repr
// round-trip cases, and 17-significant-digit values.
var edgeFloats = []float64{
	0, math.Copysign(0, -1), 1, -1, 0.5, -0.25,
	1e-6, 9.999999e-7, 1e-7, 1e20, 1e21, 9.99e20, 1e22,
	1e-300, 1e300, math.MaxFloat64, math.SmallestNonzeroFloat64,
	math.Pi, -math.Pi, 1.0 / 3.0, 2.2250738585072014e-308,
	123456789.123456789, 0.1, 0.2, 0.30000000000000004,
	4503599627370496, 9007199254740993, 1e15, 1e16,
}

func jsonBytes(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestAppendJSONFloatMatchesEncodingJSON checks the hand-rolled float
// encoder against encoding/json byte for byte: on the edge table and on
// a large sample of random bit patterns. Any divergence would split the
// fast and reflective wire forms, breaking transcript digests.
func TestAppendJSONFloatMatchesEncodingJSON(t *testing.T) {
	check := func(f float64) {
		t.Helper()
		got, ok := appendJSONFloat(nil, f)
		if !ok {
			t.Fatalf("appendJSONFloat rejected finite %g", f)
		}
		if want := jsonBytes(t, f); !bytes.Equal(got, want) {
			t.Errorf("float %g: fast %q, encoding/json %q", f, got, want)
		}
	}
	for _, f := range edgeFloats {
		check(f)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		f := math.Float64frombits(rng.Uint64())
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		check(f)
	}
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, ok := appendJSONFloat(nil, f); ok {
			t.Errorf("appendJSONFloat accepted non-finite %v", f)
		}
	}
}

// TestAppendStreamRoundMatchesEncodingJSON pins the fast request
// encoder to the reflective one across every field combination,
// including empty-but-non-nil slices (whose omitempty behaviour differs
// from nil).
func TestAppendStreamRoundMatchesEncodingJSON(t *testing.T) {
	yes, no := true, false
	packed, err := PackRounds([][]float64{{1, 2.5, -3e-9}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []StreamRound{
		{},
		{Y: []float64{}},
		{Y: edgeFloats},
		{Y: []float64{1}, XHat: &no},
		{Rounds: [][]float64{}},
		{Rounds: [][]float64{{}}},
		{Rounds: [][]float64{edgeFloats, {0, -0.5}}},
		{Rounds: [][]float64{{1e21}}, XHat: &yes},
		{Packed: packed},
		{Packed: packed, XHat: &no},
		{XHat: &yes},
	}
	for i, sr := range cases {
		got, ok := AppendStreamRound(nil, &sr)
		if !ok {
			t.Fatalf("case %d: fast encoder refused %+v", i, sr)
		}
		want := append(jsonBytes(t, sr), '\n')
		if !bytes.Equal(got, want) {
			t.Errorf("case %d: fast %q, encoding/json %q", i, got, want)
		}
	}
	if _, ok := (AppendStreamRound(nil, &StreamRound{Y: []float64{math.Inf(1)}})); ok {
		t.Error("fast encoder accepted a non-finite y")
	}
	if _, ok := (AppendStreamRound(nil, &StreamRound{Packed: `not"base64`})); ok {
		t.Error("fast encoder accepted a packed payload needing JSON escaping")
	}
}

// TestAppendStreamVerdictMatchesEncodingJSON pins the response-side
// encoder, with and without the slim-mode xhat omission.
func TestAppendStreamVerdictMatchesEncodingJSON(t *testing.T) {
	cases := []StreamVerdict{
		{Round: 0, Detected: false, ResidualNorm: 0},
		{Round: 941, Detected: true, ResidualNorm: 1234.5678901234567},
		{Round: 2, ResidualNorm: 3.2e-8, XHat: edgeFloats},
		{Round: 3, ResidualNorm: 7, XHat: []float64{}},
	}
	for i, v := range cases {
		got, ok := appendStreamVerdict(nil, &v)
		if !ok {
			t.Fatalf("case %d: fast encoder refused %+v", i, v)
		}
		want := append(jsonBytes(t, v), '\n')
		if !bytes.Equal(got, want) {
			t.Errorf("case %d: fast %q, encoding/json %q", i, got, want)
		}
	}
	if _, ok := appendStreamVerdict(nil, &StreamVerdict{ResidualNorm: math.NaN()}); ok {
		t.Error("fast encoder accepted a NaN residual")
	}
}

// TestParseStreamRoundRoundTrip checks the fast decoder on its own
// output (bit-exact floats) and on reflective output, and checks that
// every shape it cannot handle is refused rather than misparsed — those
// lines must land in encoding/json with identical semantics.
func TestParseStreamRoundRoundTrip(t *testing.T) {
	yes := false
	packed, err := PackRounds([][]float64{edgeFloats})
	if err != nil {
		t.Fatal(err)
	}
	rounds := []StreamRound{
		{Y: edgeFloats},
		{Rounds: [][]float64{edgeFloats, {1, 2, 3}}},
		{Packed: packed, XHat: &yes},
	}
	for i, want := range rounds {
		for _, line := range [][]byte{
			jsonBytes(t, want),
			[]byte("  " + string(jsonBytes(t, want)) + " \t"),
		} {
			var got StreamRound
			if !parseStreamRound(line, &got) {
				t.Fatalf("case %d: fast decoder refused %s", i, line)
			}
			if !bytes.Equal(jsonBytes(t, got), jsonBytes(t, want)) {
				t.Errorf("case %d: round-trip drift: %+v vs %+v", i, got, want)
			}
		}
	}

	// Valid-but-unusual JSON the fast path must hand to encoding/json.
	fallbacks := []string{
		`{"y":[1],"extra":2}`,      // unknown key
		`{"y":[1e999]}`,            // out-of-range number (json errors too)
		`{"y":null}`,               // null where array expected
		`{"\u0079":[1]}`,           // escaped key
		`{"xhat":"true"}`,          // wrong type
		`{"y":[1]} trailing`,       // trailing garbage
		`{"rounds":[[1],null]}`,    // null row
		`{"packed":"a\u002bc"}`,    // escape inside string
		`["y"]`, `42`, `"s"`, `{"`, // non-objects / malformed
	}
	for _, s := range fallbacks {
		var got StreamRound
		if parseStreamRound([]byte(s), &got) {
			t.Errorf("fast decoder accepted %q; must fall back to encoding/json", s)
		}
	}
}

// TestParseStreamVerdictRoundTrip checks the client fast path on real
// server output and verifies anything off the exact emitted shape —
// including reordered keys — is refused for reflective decoding.
func TestParseStreamVerdictRoundTrip(t *testing.T) {
	cases := []StreamVerdict{
		{Round: 0, ResidualNorm: 1e-9},
		{Round: 17, Detected: true, ResidualNorm: 500.25, XHat: edgeFloats},
	}
	for i, want := range cases {
		line, ok := appendStreamVerdict(nil, &want)
		if !ok {
			t.Fatal("encoder refused finite verdict")
		}
		var got StreamVerdict
		if !ParseStreamVerdict(bytes.TrimSuffix(line, []byte("\n")), &got) {
			t.Fatalf("case %d: fast decoder refused server output %s", i, line)
		}
		if !bytes.Equal(jsonBytes(t, got), jsonBytes(t, want)) {
			t.Errorf("case %d: round-trip drift: %+v vs %+v", i, got, want)
		}
	}
	for _, s := range []string{
		`{"detected":false,"round":1,"residualNorm":2}`, // reordered
		`{"round":1.5,"detected":false,"residualNorm":2}`,
		`{"round":1,"detected":false,"residualNorm":2,"extra":3}`,
		`{"done":true,"rounds":5,"alarms":0}`,
		`{"round":0,"error":"boom"}`,
	} {
		var v StreamVerdict
		if ParseStreamVerdict([]byte(s), &v) {
			t.Errorf("fast decoder accepted %q", s)
		}
	}
}

// TestPackedRoundTrip checks the packed wire form end to end in memory:
// PackRounds -> unpackRounds must be bit-exact, and malformed payloads
// must be rejected as bad requests.
func TestPackedRoundTrip(t *testing.T) {
	rows := [][]float64{edgeFloats, make([]float64, len(edgeFloats))}
	for i := range rows[1] {
		rows[1][i] = float64(i) * 1.75
	}
	s, err := PackRounds(rows)
	if err != nil {
		t.Fatal(err)
	}
	got, err := unpackRounds(s, len(edgeFloats))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("unpacked %d rows, want 2", len(got))
	}
	for r := range got {
		for i := range got[r] {
			if math.Float64bits(got[r][i]) != math.Float64bits(rows[r][i]) {
				t.Fatalf("row %d col %d: %x != %x", r, i,
					math.Float64bits(got[r][i]), math.Float64bits(rows[r][i]))
			}
		}
	}

	if _, err := PackRounds(nil); err == nil {
		t.Error("PackRounds accepted an empty batch")
	}
	if _, err := PackRounds([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("PackRounds accepted ragged rows")
	}
	nan, _ := PackRounds([][]float64{{math.NaN()}})
	for _, bad := range []struct{ s string }{
		{"***"},        // not base64
		{s[:len(s)/2]}, // wrong length for row width
		{""},           // unreachable via batch(), but must still error
		{nan},          // non-finite payload
	} {
		if _, err := unpackRounds(bad.s, len(edgeFloats)); err == nil {
			t.Errorf("unpackRounds accepted %q", bad.s)
		}
	}
	if _, err := unpackRounds(s, 0); err == nil {
		t.Error("unpackRounds accepted a zero-path system")
	}
}

// TestStreamRoundBatchValidation checks the exactly-one-of contract
// over y / rounds / packed.
func TestStreamRoundBatchValidation(t *testing.T) {
	p, _ := PackRounds([][]float64{{1, 2}})
	bad := []StreamRound{
		{},
		{Y: []float64{1}, Rounds: [][]float64{{1}}},
		{Y: []float64{1}, Packed: p},
		{Rounds: [][]float64{{1}}, Packed: p},
		{Rounds: [][]float64{}},
		{Rounds: [][]float64{nil}},
	}
	for i, sr := range bad {
		if _, err := sr.batch(2); err == nil {
			t.Errorf("case %d: batch accepted %+v", i, sr)
		}
	}
	good := StreamRound{Packed: p}
	ys, err := good.batch(2)
	if err != nil || len(ys) != 1 || len(ys[0]) != 2 {
		t.Fatalf("packed batch: %v %v", ys, err)
	}
}

// TestSessionStreamPacked drives the packed wire form through the live
// HTTP session path: a packed slim batch must yield the same verdicts
// as the equivalent rounds batch, minus the estimates.
func TestSessionStreamPacked(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sr, sys := sessionFixture(t, srv, ts)

	rounds := measureRounds(t, sys, 31, 8)
	rounds[5][0] += 30000 // force one alarm

	_, plain, errLine, _ := postStream(t, ts, sr.Session, roundsBody(t, StreamRound{Rounds: rounds}))
	if errLine != nil || len(plain) != 8 {
		t.Fatalf("plain stream: err=%+v verdicts=%d", errLine, len(plain))
	}

	packed, err := PackRounds(rounds)
	if err != nil {
		t.Fatal(err)
	}
	slim := false
	status, got, errLine, summary := postStream(t, ts, sr.Session,
		roundsBody(t, StreamRound{Packed: packed, XHat: &slim}))
	if status != http.StatusOK || errLine != nil {
		t.Fatalf("packed stream: status=%d err=%+v", status, errLine)
	}
	if len(got) != 8 || summary == nil || summary.Rounds != 8 || summary.Alarms != 1 {
		t.Fatalf("packed stream: %d verdicts, summary %+v", len(got), summary)
	}
	for i := range got {
		if got[i].XHat != nil {
			t.Errorf("verdict %d: slim mode still shipped an estimate", i)
		}
		if got[i].Round != plain[i].Round || got[i].Detected != plain[i].Detected ||
			got[i].ResidualNorm != plain[i].ResidualNorm {
			t.Errorf("verdict %d: packed %+v != plain %+v", i, got[i], plain[i])
		}
	}

	// A payload whose length does not divide into rows of numPaths is a
	// bad request reported in-stream.
	_, _, errLine, _ = postStream(t, ts, sr.Session,
		roundsBody(t, StreamRound{Packed: "AAAAAAAAAAA="}))
	if errLine == nil || !strings.Contains(errLine.Error, "packed") {
		t.Fatalf("short packed payload not rejected: %+v", errLine)
	}
}
