package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/detect"
	"repro/internal/forensics"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/tomo"
)

// Registry errors, mapped to HTTP statuses by the handler layer.
var (
	ErrNotFound   = errors.New("serve: topology not registered")
	ErrBadRequest = errors.New("serve: bad request")
	ErrConflict   = errors.New("serve: topology name already registered")
	ErrTooLarge   = errors.New("serve: request body too large")
	// ErrStore means the attached persistence backend refused to log a
	// mutation. The mutation did NOT take effect: durability comes
	// before acknowledgement, so a registration or eviction that cannot
	// be journaled is not applied in memory either.
	ErrStore = errors.New("serve: persistence failure")
)

// Entry is one registered measurement configuration: a tomography system
// with its factorization warmed, plus the long-lived detector built on
// it. Entries are immutable after registration and shared by all request
// handlers.
type Entry struct {
	Name   string
	Sys    *tomo.System
	Det    *detect.Detector
	Digest string
	// CacheHit records whether registration reused a cached solver.
	CacheHit bool
}

// solverCache shares solvers — dense normal-equation factorizations or
// sparse iterative engines, whichever tomo selected — between systems
// with identical routing matrices, keyed by tomo's R digest. The digest
// is the invalidation key: any change to the topology or path set
// changes R and therefore misses the cache, so stale solvers can never
// be applied. Sparse solvers cache the identifiability screen (the
// expensive CondEst pass), so re-registering an ISP-scale configuration
// is warm just like the dense ~100–400x case.
type solverCache struct {
	mu sync.Mutex
	m  map[string]tomo.Solver

	metrics *Metrics
}

// adopt installs a cached solver into sys, or builds sys's solver and
// caches the result. Reports whether the cache was hit. The lookup runs
// under a "cache.adopt" span; a miss additionally produces the
// factorization (or sparse-screen) span from tomo.SolverCtx.
func (c *solverCache) adopt(ctx context.Context, digest string, sys *tomo.System) (bool, error) {
	ctx, span := obs.StartSpan(ctx, "cache.adopt")
	defer span.End()
	c.mu.Lock()
	sv, ok := c.m[digest]
	c.mu.Unlock()
	span.SetBool("hit", ok)
	if ok {
		if err := sys.AdoptSolver(sv); err != nil {
			return false, err
		}
		if c.metrics != nil {
			c.metrics.CacheHits.Add(1)
		}
		return true, nil
	}
	sv, err := sys.SolverCtx(ctx)
	if err != nil {
		return false, err
	}
	c.mu.Lock()
	c.m[digest] = sv
	c.mu.Unlock()
	if c.metrics != nil {
		c.metrics.CacheMisses.Add(1)
	}
	return false, nil
}

// Registry holds the daemon's registered topologies and the shared
// solver cache. Safe for concurrent use.
//
// With a store attached (AttachStore), every mutation is journaled —
// and, per the store's fsync policy, durable — before it becomes
// visible or is acknowledged; the WAL order matches the registry order
// because the append happens under the registry write lock.
type Registry struct {
	mu        sync.RWMutex
	entries   map[string]*Entry
	cache     *solverCache
	store     store.Backend
	forensics *forensics.Table
}

// NewRegistry creates an empty registry whose solver cache reports to
// metrics (which may be nil).
func NewRegistry(metrics *Metrics) *Registry {
	return &Registry{
		entries: make(map[string]*Entry),
		cache:   &solverCache{m: make(map[string]tomo.Solver), metrics: metrics},
	}
}

// RegisterSystem registers an already-built tomography system under
// name, precomputing (or cache-adopting) its solver and building its
// detector with threshold alpha (0 selects detect.DefaultAlpha). It
// fails with ErrConflict on a name collision and with
// tomo.ErrNotIdentifiable when the system cannot support estimation.
func (r *Registry) RegisterSystem(name string, sys *tomo.System, alpha float64) (*Entry, error) {
	return r.RegisterSystemCtx(context.Background(), name, sys, alpha)
}

// RegisterSystemCtx is RegisterSystem under a "registry.register" trace
// span, with the solver-cache lookup (and any cold factorization) as
// child spans.
func (r *Registry) RegisterSystemCtx(ctx context.Context, name string, sys *tomo.System, alpha float64) (*Entry, error) {
	return r.registerSystem(ctx, name, sys, alpha, true, nil)
}

// wireShape carries a registration's original wire-format edges and
// paths so the journal can persist them verbatim instead of re-deriving
// them from the built system (the derivation walks every link and path
// node under the registry lock — measurable register latency).
type wireShape struct {
	edges, paths [][]string
}

// registerSystem is the shared registration core. With persist set and
// a store attached, the mutation is journaled under the registry lock
// before it becomes visible; Restore passes persist=false because the
// records being applied came from the journal. wire, when non-nil, is
// the request's own edge/path serialization, reused for the journal
// record (it is exactly what docFromSystem would rebuild: node names in
// link insertion order, paths as node walks).
func (r *Registry) registerSystem(ctx context.Context, name string, sys *tomo.System, alpha float64, persist bool, wire *wireShape) (*Entry, error) {
	ctx, span := obs.StartSpan(ctx, "registry.register")
	defer span.End()
	span.SetAttr("topology", name)
	if name == "" {
		return nil, fmt.Errorf("%w: empty topology name", ErrBadRequest)
	}
	if sys == nil {
		return nil, fmt.Errorf("%w: nil system", ErrBadRequest)
	}
	digest := sys.Digest()
	if m := r.cache.metrics; m != nil {
		// Feed every iterative solve's iteration count and residual
		// norm into the solver histograms. Installed before the system
		// is published to the entries map, so no handler can race the
		// write.
		sys.SetSolveObserver(m.ObserveSolve)
	}
	hit, err := r.cache.adopt(ctx, digest, sys)
	if err != nil {
		return nil, err
	}
	det, err := detect.New(sys, alpha)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	r.mu.RLock()
	ft := r.forensics
	r.mu.RUnlock()
	if ft != nil {
		// Bind the topology's forensic observatory (epoch-bumping when a
		// re-registration changed the routing matrix) and feed it every
		// successful Inspect. Installed before the entry is published, so
		// no handler can observe an unwired detector.
		o := ft.Bind(name, digest, sys.CSR(), det.Alpha())
		det.SetObserver(o.IngestReport)
	}
	entry := &Entry{Name: name, Sys: sys, Det: det, Digest: digest, CacheHit: hit}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.entries[name]; exists {
		return nil, fmt.Errorf("%w: %q", ErrConflict, name)
	}
	if r.store != nil && persist {
		var doc store.TopologyDoc
		if wire != nil {
			doc = store.TopologyDoc{Name: name, Edges: wire.edges, Paths: wire.paths, Alpha: det.Alpha(), Digest: digest}
		} else {
			var err error
			doc, err = docFromSystem(name, sys, det.Alpha(), digest)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
			}
		}
		if err := r.store.AppendRegister(doc); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrStore, err)
		}
	}
	r.entries[name] = entry
	return entry, nil
}

// Register builds a topology from named edges and node-name paths (the
// wire format of POST /v1/topologies) and registers it. Node names are
// created on first mention in an edge; paths must walk existing links.
func (r *Registry) Register(name string, edges [][]string, paths [][]string, alpha float64) (*Entry, error) {
	return r.RegisterCtx(context.Background(), name, edges, paths, alpha)
}

// RegisterCtx is Register with trace propagation into the registration
// spans.
func (r *Registry) RegisterCtx(ctx context.Context, name string, edges [][]string, paths [][]string, alpha float64) (*Entry, error) {
	sys, err := buildWireSystem(edges, paths)
	if err != nil {
		return nil, err
	}
	return r.registerSystem(ctx, name, sys, alpha, true, &wireShape{edges: edges, paths: paths})
}

// buildWireSystem assembles a tomography system from the wire format:
// named edges and node-name walks.
func buildWireSystem(edges [][]string, paths [][]string) (*tomo.System, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("%w: no edges", ErrBadRequest)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("%w: no paths", ErrBadRequest)
	}
	g := graph.New()
	nodes := make(map[string]graph.NodeID)
	node := func(n string) (graph.NodeID, error) {
		if n == "" {
			return 0, fmt.Errorf("%w: empty node name", ErrBadRequest)
		}
		if id, ok := nodes[n]; ok {
			return id, nil
		}
		id := g.AddNode(n)
		nodes[n] = id
		return id, nil
	}
	for i, e := range edges {
		if len(e) != 2 {
			return nil, fmt.Errorf("%w: edge %d has %d endpoints, want 2", ErrBadRequest, i, len(e))
		}
		a, err := node(e[0])
		if err != nil {
			return nil, err
		}
		b, err := node(e[1])
		if err != nil {
			return nil, err
		}
		if _, err := g.AddLink(a, b); err != nil {
			return nil, fmt.Errorf("%w: edge %d (%s–%s): %v", ErrBadRequest, i, e[0], e[1], err)
		}
	}
	walked := make([]graph.Path, 0, len(paths))
	for pi, names := range paths {
		if len(names) < 2 {
			return nil, fmt.Errorf("%w: path %d has %d nodes, want ≥ 2", ErrBadRequest, pi, len(names))
		}
		var p graph.Path
		for i, n := range names {
			v, ok := g.NodeByName(n)
			if !ok {
				return nil, fmt.Errorf("%w: path %d: unknown node %q", ErrBadRequest, pi, n)
			}
			p.Nodes = append(p.Nodes, v)
			if i > 0 {
				l, ok := g.LinkBetween(p.Nodes[i-1], v)
				if !ok {
					return nil, fmt.Errorf("%w: path %d: no link %q–%q", ErrBadRequest, pi, names[i-1], n)
				}
				p.Links = append(p.Links, l)
			}
		}
		walked = append(walked, p)
	}
	sys, err := tomo.NewSystem(g, walked)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return sys, nil
}

// AttachForensics installs the forensic observatory table: from this
// call on, every registration binds its topology's observatory and
// wires the detector observer into it. Attach before serving (serve.New
// does); registrations that ran before the attach are not retrofitted.
func (r *Registry) AttachForensics(t *forensics.Table) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.forensics = t
}

// AttachStore installs the persistence backend. From this call on,
// every successful registration and eviction is journaled before it is
// applied or acknowledged. Attach after Restore, never before: the
// restore path must not re-journal the records it is replaying.
func (r *Registry) AttachStore(b store.Backend) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.store = b
}

// Restore registers recovered topology documents without journaling
// them, verifying that each rebuilt system reproduces the digest
// recorded at original registration time — a corrupt or hand-edited
// document fails loudly here rather than silently serving a different
// routing matrix. Returns the number of topologies restored.
func (r *Registry) Restore(ctx context.Context, docs []store.TopologyDoc) (int, error) {
	ctx, span := obs.StartSpan(ctx, "registry.restore")
	defer span.End()
	for i, doc := range docs {
		sys, err := buildWireSystem(doc.Edges, doc.Paths)
		if err != nil {
			return i, fmt.Errorf("serve: restore %q: %w", doc.Name, err)
		}
		entry, err := r.registerSystem(ctx, doc.Name, sys, doc.Alpha, false, nil)
		if err != nil {
			return i, fmt.Errorf("serve: restore %q: %w", doc.Name, err)
		}
		if doc.Digest != "" && entry.Digest != doc.Digest {
			return i, fmt.Errorf("serve: restore %q: rebuilt routing matrix digest %s, journal recorded %s",
				doc.Name, entry.Digest, doc.Digest)
		}
	}
	span.SetInt("topologies", len(docs))
	return len(docs), nil
}

// DocFromSystem converts a registered system back into its persisted
// wire form: named edges in link order and node-name walks in path
// order. The round trip doc → buildWireSystem reproduces the routing
// matrix exactly (same digest), which Restore verifies.
func DocFromSystem(name string, sys *tomo.System, alpha float64) (store.TopologyDoc, error) {
	return docFromSystem(name, sys, alpha, sys.Digest())
}

// WireDigest computes the routing-matrix digest of a wire-format
// topology without registering it — the key a cluster router hashes to
// place a registration on a replication group. It is byte-identical to
// the digest the receiving registry will record for the same edges and
// paths, so placement and storage agree by construction.
func WireDigest(edges, paths [][]string) (string, error) {
	sys, err := buildWireSystem(edges, paths)
	if err != nil {
		return "", err
	}
	return sys.Digest(), nil
}

// docFromSystem is DocFromSystem with the digest supplied by a caller
// that already computed it (the journaled register path runs under the
// registry lock; recomputing the SHA-256 there is pure latency).
func docFromSystem(name string, sys *tomo.System, alpha float64, digest string) (store.TopologyDoc, error) {
	g := sys.Graph()
	links := g.Links()
	doc := store.TopologyDoc{
		Name: name, Alpha: alpha, Digest: digest,
		Edges: make([][]string, 0, len(links)),
		Paths: make([][]string, 0, len(sys.Paths())),
	}
	nodeName := func(v graph.NodeID) (string, error) {
		n, err := g.NodeName(v)
		if err != nil {
			return "", fmt.Errorf("serve: doc from system: %w", err)
		}
		return n, nil
	}
	for _, l := range links {
		a, err := nodeName(l.A)
		if err != nil {
			return doc, err
		}
		b, err := nodeName(l.B)
		if err != nil {
			return doc, err
		}
		doc.Edges = append(doc.Edges, []string{a, b})
	}
	for _, p := range sys.Paths() {
		walk := make([]string, 0, len(p.Nodes))
		for _, v := range p.Nodes {
			n, err := nodeName(v)
			if err != nil {
				return doc, err
			}
			walk = append(walk, n)
		}
		doc.Paths = append(doc.Paths, walk)
	}
	return doc, nil
}

// Evict removes the entry registered under name and returns it, or
// ErrNotFound. Entries are immutable and shared, so handlers holding the
// entry keep serving their in-flight requests; only new lookups miss.
// The solver cache deliberately keeps the factorization: it is keyed by
// the routing-matrix digest, not the name, so a re-registration of the
// same configuration stays warm and a different one can never alias it.
// With a store attached the eviction is journaled first; a journal
// failure leaves the entry registered (and the error tells the client
// the eviction did not happen). The topology's forensic observatory is
// unbound with the entry — a daemon churning through evict/re-register
// cycles must not leak observatory state, and a later registration
// under the same name starts a fresh observatory at epoch zero.
func (r *Registry) Evict(name string) (*Entry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if r.store != nil {
		if err := r.store.AppendEvict(name); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrStore, err)
		}
	}
	delete(r.entries, name)
	if r.forensics != nil {
		r.forensics.Unbind(name)
	}
	return e, nil
}

// Get returns the entry registered under name.
func (r *Registry) Get(name string) (*Entry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return e, nil
}

// Names returns the registered topology names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for n := range r.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered topologies.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
