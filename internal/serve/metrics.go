package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds (seconds) of the estimate-latency
// histogram, spanning sub-microsecond warm matvecs to pathological
// multi-second solves.
var latencyBuckets = [numLatencyBuckets]float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1,
}

const numLatencyBuckets = 7

// Metrics is the daemon's observability state: request counters per
// route, the estimate-latency histogram, solver-cache traffic, and
// detector alarms. All fields are updated atomically; a single Metrics
// is shared by every handler goroutine.
type Metrics struct {
	ReqTopologies atomic.Int64 // POST /v1/topologies requests
	ReqEvict      atomic.Int64 // DELETE /v1/topologies/{name} requests
	ReqEstimate   atomic.Int64 // POST /v1/estimate requests
	ReqInspect    atomic.Int64 // POST /v1/inspect requests
	ReqErrors     atomic.Int64 // requests answered with a 4xx/5xx
	ReqRejected   atomic.Int64 // requests shed by the worker pool

	Evictions atomic.Int64 // topologies actually removed (evict 200s)

	EstimateRounds atomic.Int64 // measurement rounds estimated
	InspectRounds  atomic.Int64 // measurement rounds inspected
	Alarms         atomic.Int64 // rounds the detector flagged

	CacheHits   atomic.Int64 // solver-cache hits at registration
	CacheMisses atomic.Int64 // solver-cache misses (factorizations run)

	latCounts [numLatencyBuckets + 1]atomic.Int64 // +Inf bucket last
	latCount  atomic.Int64
	latSumNs  atomic.Int64
}

// ObserveEstimate records one solve's wall-clock latency.
func (m *Metrics) ObserveEstimate(d time.Duration) {
	s := d.Seconds()
	i := 0
	for ; i < len(latencyBuckets); i++ {
		if s <= latencyBuckets[i] {
			break
		}
	}
	m.latCounts[i].Add(1)
	m.latCount.Add(1)
	m.latSumNs.Add(d.Nanoseconds())
}

// WritePrometheus renders the metrics in the Prometheus text exposition
// format (no client library needed for counters and histograms).
func (m *Metrics) WritePrometheus(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP tomographyd_requests_total API requests by route.\n")
	fmt.Fprintf(w, "# TYPE tomographyd_requests_total counter\n")
	fmt.Fprintf(w, "tomographyd_requests_total{route=%q} %d\n", "topologies", m.ReqTopologies.Load())
	fmt.Fprintf(w, "tomographyd_requests_total{route=%q} %d\n", "estimate", m.ReqEstimate.Load())
	fmt.Fprintf(w, "tomographyd_requests_total{route=%q} %d\n", "inspect", m.ReqInspect.Load())
	fmt.Fprintf(w, "tomographyd_requests_total{route=%q} %d\n", "evict", m.ReqEvict.Load())
	counter("tomographyd_request_errors_total", "Requests answered with an error status.", m.ReqErrors.Load())
	counter("tomographyd_evictions_total", "Topologies removed via DELETE.", m.Evictions.Load())
	counter("tomographyd_requests_rejected_total", "Requests shed by the worker pool (timeout or shutdown).", m.ReqRejected.Load())
	counter("tomographyd_estimate_rounds_total", "Measurement rounds estimated.", m.EstimateRounds.Load())
	counter("tomographyd_inspect_rounds_total", "Measurement rounds inspected.", m.InspectRounds.Load())
	counter("tomographyd_detector_alarms_total", "Rounds flagged by the scapegoat detector.", m.Alarms.Load())
	counter("tomographyd_solver_cache_hits_total", "Registrations served from the solver cache.", m.CacheHits.Load())
	counter("tomographyd_solver_cache_misses_total", "Registrations that ran a fresh factorization.", m.CacheMisses.Load())

	fmt.Fprintf(w, "# HELP tomographyd_estimate_latency_seconds Per-round estimate latency.\n")
	fmt.Fprintf(w, "# TYPE tomographyd_estimate_latency_seconds histogram\n")
	var cum int64
	for i, ub := range latencyBuckets {
		cum += m.latCounts[i].Load()
		fmt.Fprintf(w, "tomographyd_estimate_latency_seconds_bucket{le=%q} %d\n", fmt.Sprintf("%g", ub), cum)
	}
	cum += m.latCounts[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "tomographyd_estimate_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "tomographyd_estimate_latency_seconds_sum %g\n", float64(m.latSumNs.Load())/1e9)
	fmt.Fprintf(w, "tomographyd_estimate_latency_seconds_count %d\n", m.latCount.Load())
}
