package serve

import (
	"io"
	"time"

	"repro/internal/forensics"
	"repro/internal/obs"
	"repro/internal/tomo"
)

// Metrics is the daemon's observability state, built on the
// internal/obs instrument registry: request counters per route, the
// estimate-latency histogram, per-stage (trace-span) latency
// histograms, solver-cache traffic, detector alarms, and Go runtime
// gauges. A single Metrics is shared by every handler goroutine; all
// instruments are safe for concurrent use.
//
// Route accounting: every mounted API route — including GET /healthz
// and GET /metrics — increments tomographyd_requests_total{route=...}
// in the instrumentation middleware, so a load generator can reconcile
// its request counts against a scrape exactly. The only requests not
// counted are those the mux rejects before reaching a handler
// (unknown paths, 405 method mismatches) and the /debug/* endpoints,
// which are deliberately uninstrumented so that scraping traces or
// profiles never perturbs the request counters or the trace ring.
type Metrics struct {
	reg *obs.Registry

	ReqTopologies    *obs.Counter // POST /v1/topologies requests
	ReqEvict         *obs.Counter // DELETE /v1/topologies/{name} requests
	ReqEstimate      *obs.Counter // POST /v1/estimate requests
	ReqInspect       *obs.Counter // POST /v1/inspect requests
	ReqHealthz       *obs.Counter // GET /healthz requests
	ReqMetrics       *obs.Counter // GET /metrics requests
	ReqSessions      *obs.Counter // POST /v1/sessions requests
	ReqSessionGet    *obs.Counter // GET /v1/sessions/{id} requests
	ReqRounds        *obs.Counter // POST /v1/sessions/{id}/rounds requests
	ReqSessionPaths  *obs.Counter // POST /v1/sessions/{id}/paths requests
	ReqSessionDelete *obs.Counter // DELETE /v1/sessions/{id} requests
	ReqForensics     *obs.Counter // GET /v1/topologies/{name}/forensics requests
	ReqErrors        *obs.Counter // requests answered with a 4xx/5xx
	ReqRejected      *obs.Counter // requests shed by the worker pool
	ReqBusy          *obs.Counter // round streams shed with 429 (pool full)

	Evictions *obs.Counter // topologies actually removed (evict 200s)

	EstimateRounds *obs.Counter // measurement rounds estimated
	InspectRounds  *obs.Counter // measurement rounds inspected
	Alarms         *obs.Counter // rounds the detector flagged

	SessionsOpened *obs.Counter // sessions created
	SessionsClosed *obs.Counter // sessions closed via DELETE
	SessionsReaped *obs.Counter // sessions removed by the idle reaper
	SessionRounds  *obs.Counter // rounds streamed through sessions
	SessionAlarms  *obs.Counter // streamed rounds the detector flagged

	// PathMutations counts session path add/remove operations by the
	// solver-derivation route tomo reports ("rank1-update",
	// "rank1-downdate", "refactor", "sparse-append", "coverage-screen",
	// "cold") — the updating-vs-refactor decision made observable.
	PathMutations *obs.CounterVec

	CacheHits   *obs.Counter // solver-cache hits at registration
	CacheMisses *obs.Counter // solver-cache misses (factorizations run)

	ReplicationPulls *obs.Counter // WAL tail pulls served to followers
	Promotions       *obs.Counter // follower→primary promotions on this shard

	// EstimateLatency is the per-round solve/inspect latency histogram
	// (tomographyd_estimate_latency_seconds, as before the obs
	// migration).
	EstimateLatency *obs.Histogram
	// RoundLatency is the streamed-round latency histogram: per-round
	// amortized solve+verdict time inside session round streams, the
	// number the batched API exists to shrink.
	RoundLatency *obs.Histogram
	// SolverIterations and SolverResidual record every iterative
	// (sparse CGLS) solve: how many iterations it took and the final
	// measurement-space residual norm ‖y − R·x̂‖₂. Dense Cholesky
	// solves have no iteration count and do not observe here, so these
	// histograms are exactly the sparse path's convergence telemetry.
	SolverIterations *obs.Histogram
	SolverResidual   *obs.Histogram
	// stageLatency aggregates trace-span durations per stage name
	// (tomographyd_stage_latency_seconds{stage="tomo.solve"} etc.),
	// fed by the server tracer's span-end hook.
	stageLatency *obs.HistogramVec
}

// NewMetrics builds the daemon's instrument set on a fresh obs
// registry, pre-creating every route series so a scrape of an idle
// daemon already shows all routes at zero.
func NewMetrics() *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{reg: reg}
	req := reg.CounterVec("tomographyd_requests_total", "API requests by route.", "route")
	m.ReqTopologies = req.With("topologies")
	m.ReqEstimate = req.With("estimate")
	m.ReqInspect = req.With("inspect")
	m.ReqEvict = req.With("evict")
	m.ReqHealthz = req.With("healthz")
	m.ReqMetrics = req.With("metrics")
	m.ReqSessions = req.With("sessions")
	m.ReqSessionGet = req.With("session_get")
	m.ReqRounds = req.With("rounds")
	m.ReqSessionPaths = req.With("session_paths")
	m.ReqSessionDelete = req.With("session_delete")
	m.ReqForensics = req.With("forensics")
	m.ReqErrors = reg.Counter("tomographyd_request_errors_total", "Requests answered with an error status.")
	m.ReqBusy = reg.Counter("tomographyd_requests_busy_total", "Round streams shed with 429 because every worker slot was taken.")
	m.Evictions = reg.Counter("tomographyd_evictions_total", "Topologies removed via DELETE.")
	m.ReqRejected = reg.Counter("tomographyd_requests_rejected_total", "Requests shed by the worker pool (timeout or shutdown).")
	m.EstimateRounds = reg.Counter("tomographyd_estimate_rounds_total", "Measurement rounds estimated.")
	m.InspectRounds = reg.Counter("tomographyd_inspect_rounds_total", "Measurement rounds inspected.")
	m.Alarms = reg.Counter("tomographyd_detector_alarms_total", "Rounds flagged by the scapegoat detector.")
	m.SessionsOpened = reg.Counter("tomographyd_sessions_opened_total", "Round sessions created.")
	m.SessionsClosed = reg.Counter("tomographyd_sessions_closed_total", "Round sessions closed via DELETE.")
	m.SessionsReaped = reg.Counter("tomographyd_sessions_reaped_total", "Round sessions removed by the idle reaper.")
	m.SessionRounds = reg.Counter("tomographyd_session_rounds_total", "Measurement rounds streamed through sessions.")
	m.SessionAlarms = reg.Counter("tomographyd_session_alarms_total", "Streamed rounds flagged by the scapegoat detector.")
	m.PathMutations = reg.CounterVec("tomographyd_path_mutations_total", "Session path mutations by solver-derivation method.", "method")
	m.CacheHits = reg.Counter("tomographyd_solver_cache_hits_total", "Registrations served from the solver cache.")
	m.CacheMisses = reg.Counter("tomographyd_solver_cache_misses_total", "Registrations that ran a fresh factorization.")
	m.ReplicationPulls = reg.Counter("tomographyd_replication_pulls_total", "WAL tail pulls served to tailing followers.")
	m.Promotions = reg.Counter("tomographyd_replication_promotions_total", "Follower-to-primary promotions on this shard.")
	m.EstimateLatency = reg.Histogram("tomographyd_estimate_latency_seconds", "Per-round estimate latency.", obs.DefaultLatencyBuckets)
	m.RoundLatency = reg.Histogram("tomographyd_round_latency_seconds", "Amortized per-round latency inside session round streams.", obs.DefaultLatencyBuckets)
	m.SolverIterations = reg.Histogram("tomographyd_solver_iterations", "Iterations per sparse (CGLS) solve.",
		[]float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500})
	m.SolverResidual = reg.Histogram("tomographyd_solver_residual_norm", "Final residual norm per sparse (CGLS) solve.",
		[]float64{1e-12, 1e-9, 1e-6, 1e-3, 1, 1e3})
	m.stageLatency = reg.HistogramVec("tomographyd_stage_latency_seconds", "Trace-span duration by pipeline stage.", "stage", obs.DefaultLatencyBuckets)
	obs.RegisterRuntime(reg)
	return m
}

// Registry exposes the underlying obs registry (for mounting extra
// instruments next to the daemon's — cmd/tomographyd adds the store_*
// family here when -data-dir is set).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// trackRegistry registers tomographyd_topologies_registered, a
// collect-time gauge over the live registry: unlike the cumulative
// register/evict counters, it reports current cardinality, so an
// operator can see registry size directly on /metrics. Called once by
// serve.New, after the registry exists.
func (m *Metrics) trackRegistry(reg *Registry) {
	m.reg.GaugeFunc("tomographyd_topologies_registered",
		"Topologies currently registered (live registry cardinality).",
		func() float64 { return float64(reg.Len()) })
}

// trackSessions registers tomographyd_sessions_active, a collect-time
// gauge over the live session table — the streaming counterpart of
// trackRegistry. Called once by serve.New, after the table exists.
func (m *Metrics) trackSessions(t *sessionTable) {
	m.reg.GaugeFunc("tomographyd_sessions_active",
		"Round sessions currently open (live session-table cardinality).",
		func() float64 { return float64(t.len()) })
}

// trackForensics registers the live forensic metric families and
// refreshes them at scrape time from the observatory table:
//
//	tomographyd_residual_{p50,p95,p99,ewma}{topology}   residual-norm analytics
//	tomographyd_residual_rounds{topology}               rounds in current epoch
//	tomographyd_suspicion_top_link{topology}            most-suspected link ID
//	tomographyd_suspicion_top_score{topology}           its mean per-round attribution
//	tomographyd_suspicion_alarm_bursts{topology}        alarmed CUSUM bursts retained
//	tomographyd_suspicion_epoch{topology}               routing-regime generation
//
// Gauges (not counters): every value resets with the observatory epoch,
// and the quantiles are point-in-time sketch reads. Called once by
// serve.New, after the table exists.
func (m *Metrics) trackForensics(t *forensics.Table) {
	p50 := m.reg.GaugeVec("tomographyd_residual_p50", "Streaming p50 of inspected residual norms (current epoch).", "topology")
	p95 := m.reg.GaugeVec("tomographyd_residual_p95", "Streaming p95 of inspected residual norms (current epoch).", "topology")
	p99 := m.reg.GaugeVec("tomographyd_residual_p99", "Streaming p99 of inspected residual norms (current epoch).", "topology")
	ewma := m.reg.GaugeVec("tomographyd_residual_ewma", "EWMA of inspected residual norms (current epoch).", "topology")
	rounds := m.reg.GaugeVec("tomographyd_residual_rounds", "Rounds folded into the forensic observatory this epoch.", "topology")
	topLink := m.reg.GaugeVec("tomographyd_suspicion_top_link", "Most-suspected link ID by residual attribution (-1 when none).", "topology")
	topScore := m.reg.GaugeVec("tomographyd_suspicion_top_score", "Mean per-round attribution of the most-suspected link.", "topology")
	bursts := m.reg.GaugeVec("tomographyd_suspicion_alarm_bursts", "Alarmed CUSUM bursts among retained bursts this epoch.", "topology")
	epoch := m.reg.GaugeVec("tomographyd_suspicion_epoch", "Routing-regime generation of the observatory (bumps on digest change).", "topology")
	m.reg.OnCollect(func() {
		for _, s := range t.Snapshots() {
			p50.With(s.Name).Set(s.Residual.P50)
			p95.With(s.Name).Set(s.Residual.P95)
			p99.With(s.Name).Set(s.Residual.P99)
			ewma.With(s.Name).Set(s.Residual.EWMA)
			rounds.With(s.Name).Set(float64(s.Rounds))
			link, score := -1, 0.0
			if len(s.TopLinks) > 0 {
				link, score = s.TopLinks[0].Link, s.TopLinks[0].Score
			}
			topLink.With(s.Name).Set(float64(link))
			topScore.With(s.Name).Set(score)
			alarmed := 0
			for _, b := range s.Bursts {
				if b.Alarmed {
					alarmed++
				}
			}
			bursts.With(s.Name).Set(float64(alarmed))
			epoch.With(s.Name).Set(float64(s.Epoch))
		}
	})
}

// ObserveSolve records one iterative solve's convergence statistics —
// installed as every registered system's solve observer, so the sparse
// path's iteration counts and residual norms land on /metrics.
func (m *Metrics) ObserveSolve(st tomo.SolveStats) {
	m.SolverIterations.Observe(float64(st.Iterations))
	m.SolverResidual.Observe(st.ResidualNorm)
}

// ObserveEstimate records one solve's wall-clock latency.
func (m *Metrics) ObserveEstimate(d time.Duration) {
	m.EstimateLatency.ObserveDuration(d)
}

// ObserveStage records one trace span's duration under its stage name —
// installed as the server tracer's span-end hook, so every span in
// every trace also lands in a per-stage latency histogram.
func (m *Metrics) ObserveStage(stage string, d time.Duration) {
	m.stageLatency.With(stage).ObserveDuration(d)
}

// WritePrometheus renders the metrics in the Prometheus text exposition
// format (no client library needed).
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.reg.WritePrometheus(w)
}
