package metrics

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDelayToAdditive(t *testing.T) {
	got, err := Delay.ToAdditive(42)
	if err != nil || got != 42 {
		t.Errorf("ToAdditive(42) = %g, %v", got, err)
	}
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := Delay.ToAdditive(bad); !errors.Is(err, ErrBadValue) {
			t.Errorf("ToAdditive(%g): err = %v, want ErrBadValue", bad, err)
		}
	}
}

func TestLossToAdditive(t *testing.T) {
	got, err := Loss.ToAdditive(1)
	if err != nil || got != 0 {
		t.Errorf("ToAdditive(1) = %g, %v; want 0", got, err)
	}
	got, err = Loss.ToAdditive(0.5)
	if err != nil || math.Abs(got-math.Ln2) > 1e-12 {
		t.Errorf("ToAdditive(0.5) = %g, %v; want ln2", got, err)
	}
	for _, bad := range []float64{0, -0.5, 1.5, math.NaN()} {
		if _, err := Loss.ToAdditive(bad); !errors.Is(err, ErrBadValue) {
			t.Errorf("ToAdditive(%g): err = %v, want ErrBadValue", bad, err)
		}
	}
}

func TestUnknownKind(t *testing.T) {
	if _, err := Kind(0).ToAdditive(1); !errors.Is(err, ErrBadValue) {
		t.Errorf("unknown kind: err = %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: FromAdditive ∘ ToAdditive is identity on valid inputs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := rng.Float64() * 1e4
		ad, err := Delay.ToAdditive(d)
		if err != nil || Delay.FromAdditive(ad) != d {
			return false
		}
		r := math.Nextafter(0, 1) + rng.Float64()*(1-1e-9)
		ar, err := Loss.ToAdditive(r)
		if err != nil {
			return false
		}
		return math.Abs(Loss.FromAdditive(ar)-r) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLossAdditivityProperty(t *testing.T) {
	// Property: the additive form of a product of ratios is the sum of
	// the additive forms — the reason tomography works for loss at all.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r1 := 0.1 + rng.Float64()*0.9
		r2 := 0.1 + rng.Float64()*0.9
		a1, _ := Loss.ToAdditive(r1)
		a2, _ := Loss.ToAdditive(r2)
		a12, _ := Loss.ToAdditive(r1 * r2)
		return math.Abs(a12-(a1+a2)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAggregatePath(t *testing.T) {
	if got := AggregatePath([]float64{1, 2, 3}); got != 6 {
		t.Errorf("AggregatePath = %g, want 6", got)
	}
	if got := AggregatePath(nil); got != 0 {
		t.Errorf("AggregatePath(nil) = %g, want 0", got)
	}
}

func TestStringsAndUnits(t *testing.T) {
	if Delay.String() != "delay" || Loss.String() != "loss" {
		t.Error("Kind strings wrong")
	}
	if Delay.Unit() != "ms" || Loss.Unit() != "delivery ratio" {
		t.Error("units wrong")
	}
	if Kind(9).String() == "" || Kind(9).Unit() == "" {
		t.Error("unknown kind strings empty")
	}
}
