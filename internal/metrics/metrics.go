// Package metrics defines the additive link-metric abstraction used by
// network tomography. The paper's linear model y = Rx requires metrics
// that add along a path: delay adds directly, while packet delivery
// (success) ratios multiply and therefore add in the −log domain
// (Section II-A, citing Castro et al.).
package metrics

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadValue is returned when a raw metric value is outside its domain.
var ErrBadValue = errors.New("metrics: value out of domain")

// Kind selects a link performance metric.
type Kind int

// Supported metric kinds.
const (
	// Delay is a per-link latency in milliseconds; additive as-is.
	Delay Kind = iota + 1
	// Loss is a per-link delivery (success) ratio in (0, 1];
	// its additive form is −ln(ratio).
	Loss
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Delay:
		return "delay"
	case Loss:
		return "loss"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Unit returns the display unit of the raw metric.
func (k Kind) Unit() string {
	switch k {
	case Delay:
		return "ms"
	case Loss:
		return "delivery ratio"
	default:
		return "?"
	}
}

// ToAdditive converts a raw metric value to its additive form.
// Delay passes through (must be ≥ 0); Loss maps delivery ratio
// r ∈ (0,1] to −ln r ≥ 0.
func (k Kind) ToAdditive(raw float64) (float64, error) {
	switch k {
	case Delay:
		if raw < 0 || math.IsNaN(raw) || math.IsInf(raw, 0) {
			return 0, fmt.Errorf("metrics: delay %g: %w", raw, ErrBadValue)
		}
		return raw, nil
	case Loss:
		if raw <= 0 || raw > 1 || math.IsNaN(raw) {
			return 0, fmt.Errorf("metrics: delivery ratio %g not in (0,1]: %w", raw, ErrBadValue)
		}
		return -math.Log(raw), nil
	default:
		return 0, fmt.Errorf("metrics: unknown kind %d: %w", int(k), ErrBadValue)
	}
}

// FromAdditive converts an additive value back to the raw metric:
// identity for Delay, exp(−x) for Loss.
func (k Kind) FromAdditive(x float64) float64 {
	switch k {
	case Loss:
		return math.Exp(-x)
	default:
		return x
	}
}

// AggregatePath sums additive link values along a path — the model's
// defining assumption.
func AggregatePath(linkValues []float64) float64 {
	var s float64
	for _, v := range linkValues {
		s += v
	}
	return s
}
