package core

import (
	"fmt"
	"math"

	"repro/internal/la"
	"repro/internal/lp"
)

// solveEvasive solves the threshold-evading variant of the plain attack:
// like SolveWithBounds, but additionally keeps the detection residual
// under the operator's threshold:
//
//	‖R·x̂(m) − y'‖₁ ≤ α·safety
//
// This extends Remark 4: the detector's empirical threshold α is public
// knowledge (or guessable), so a rational attacker under an imperfect
// cut does not need full consistency — only enough of it to stay under
// the alarm level. The residual is linear in m because the clean part
// cancels: R·x̂ − y' = (R·T − I)(y + m) = (R·T − I)·m (since y = R·x*
// lies in R's column space). The L1 constraint is encoded by splitting
// the residual into non-negative parts r⁺ − r⁻ with Σ(r⁺+r⁻) ≤ budget.
//
// Variables: m over controlled paths, then r⁺ and r⁻ over all paths.
func (sc *Scenario) solveEvasive(sl, su la.Vector, budget float64) (*Result, error) {
	nLinks := sc.Sys.NumLinks()
	nPaths := sc.Sys.NumPaths()
	nm := len(sc.controlled)
	nv := nm + 2*nPaths
	prob := lp.NewProblem(nv)

	obj := make([]float64, nv)
	for j := 0; j < nm; j++ {
		obj[j] = 1
	}
	if err := prob.SetObjective(obj); err != nil {
		return nil, err
	}
	capVal := sc.pathCap()
	if !math.IsInf(capVal, 1) {
		for j := 0; j < nm; j++ {
			if err := prob.SetUpperBound(j, capVal); err != nil {
				return nil, err
			}
		}
	}

	// Precompute D = R·T once; residual row i is Σ_j (D[i][pj] − δ_{i,pj})·m_j.
	rt, err := sc.Sys.R().Mul(sc.operator)
	if err != nil {
		return nil, err
	}

	row := make([]float64, nv)
	zeroRow := func() {
		for j := range row {
			row[j] = 0
		}
	}

	// Link estimate bounds, as in the plain solver.
	for l := 0; l < nLinks; l++ {
		lo, hi := sl[l], su[l]
		if math.IsInf(lo, -1) && math.IsInf(hi, 1) {
			continue
		}
		zeroRow()
		for j, pi := range sc.controlled {
			row[j] = sc.operator.At(l, pi)
		}
		if !math.IsInf(hi, 1) {
			if err := prob.AddConstraint(row, lp.LE, hi-sc.TrueX[l]); err != nil {
				return nil, err
			}
		}
		if !math.IsInf(lo, -1) {
			if err := prob.AddConstraint(row, lp.GE, lo-sc.TrueX[l]); err != nil {
				return nil, err
			}
		}
	}

	// Residual definition rows: (D − I)·m − r⁺ + r⁻ = 0, one per path.
	for i := 0; i < nPaths; i++ {
		zeroRow()
		for j, pi := range sc.controlled {
			c := rt.At(i, pi)
			if pi == i {
				c--
			}
			row[j] = c
		}
		row[nm+i] = -1       // r⁺_i
		row[nm+nPaths+i] = 1 // r⁻_i
		if err := prob.AddConstraint(row, lp.EQ, 0); err != nil {
			return nil, err
		}
	}
	// Budget row: Σ (r⁺ + r⁻) ≤ budget.
	zeroRow()
	for i := 0; i < 2*nPaths; i++ {
		row[nm+i] = 1
	}
	if err := prob.AddConstraint(row, lp.LE, budget); err != nil {
		return nil, err
	}

	sol, err := lp.Solve(prob)
	if err != nil {
		return nil, fmt.Errorf("core: evasive LP solve: %w", err)
	}
	res := &Result{LPStatus: sol.Status}
	if sol.Status != lp.Optimal {
		return res, nil
	}
	res.Feasible = true
	m := make(la.Vector, nPaths)
	for j, pi := range sc.controlled {
		m[pi] = sol.X[j]
	}
	res.M = m
	res.Damage = m.Norm1()
	yObs, err := sc.measuredY.Add(m)
	if err != nil {
		return nil, err
	}
	res.YObserved = yObs
	xhat, err := sc.Sys.Estimate(yObs)
	if err != nil {
		return nil, err
	}
	res.XHat = xhat
	res.States = sc.Thresholds.ClassifyAll(xhat)
	res.AvgPathMetric = yObs.Mean()
	return res, nil
}
