// Package core implements the paper's contribution: the scapegoating
// attack strategies against network tomography (Section III) and their
// feasibility machinery (Section IV-A).
//
// An attacker set V_m controls the links incident to it (L_m) and can
// add non-negative manipulation m_i to every measurement path i it sits
// on (Constraint 1). The tomography estimate then becomes
// x̂ = x* + T·m with T = (RᵀR)⁻¹Rᵀ, and each strategy is a linear
// program over m:
//
//   - ChosenVictim (Eq. 4): given victims L_s, make L_m estimate normal
//     and L_s abnormal, maximizing the damage ‖m‖₁.
//   - MaxDamage (Eq. 8): additionally search the victim set.
//   - Obfuscate (Eq. 9): drive L_s ∪ L_m into the uncertain band.
//
// All three reduce to the generic bound form s_l ⪯ x̂ ⪯ s_u (Eq. 12),
// exposed as SolveWithBounds.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/lp"
	"repro/internal/tomo"
)

// ErrBadScenario is returned when a scenario is malformed.
var ErrBadScenario = errors.New("core: malformed scenario")

// DefaultPathCap is the paper's per-path manipulation limit: attackers
// "should not delay the delivery of a packet on a measurement path for
// more than 2000ms" (Section V-A).
const DefaultPathCap = 2000.0

// DefaultMargin is the slack that turns Definition 1's strict
// inequalities (x < b_l, x > b_u) into the non-strict ones a linear
// program needs.
const DefaultMargin = 1e-6

// Scenario fixes everything an attack strategy needs: the tomography
// system under attack, the classification thresholds, who the attackers
// are, the true link metrics, and the per-path manipulation cap.
type Scenario struct {
	// Sys is the tomography system (topology + measurement paths).
	Sys *tomo.System
	// Thresholds classify estimated link metrics (Definition 1).
	Thresholds tomo.Thresholds
	// Attackers is V_m. Monitors may be attackers (Section II-D).
	Attackers []graph.NodeID
	// TrueX is the true link-metric vector x*.
	TrueX la.Vector
	// PathCap bounds each m_i; 0 means DefaultPathCap, negative means
	// unbounded.
	PathCap float64
	// Margin widens strict threshold inequalities; 0 means
	// DefaultMargin.
	Margin float64
	// Stealthy selects the consistent attack construction of Theorem 1
	// and Theorem 3's proof: the manipulation is forced to be
	// m = R·Δx̂ (Eq. 15), so the observed measurements satisfy
	// R·x̂ = y' exactly and the Eq. 23 detector sees nothing. The
	// paper's strategy formulations (Eqs. 4, 8, 9) omit this
	// constraint; a damage-maximizing attacker without it generally
	// leaves a nonzero residual even under a perfect cut. Stealthy
	// attacks trade damage for invisibility and are infeasible whenever
	// the victims are not perfectly cut (Theorem 3's converse).
	Stealthy bool
	// EvadeAlpha, when positive, additionally caps the detection
	// residual: ‖R·x̂(m) − y'‖₁ ≤ EvadeAlpha. This is the rational
	// attacker of Remark 4 — it does not need full consistency
	// (Stealthy), only enough to stay under the operator's alarm
	// threshold. Ignored when Stealthy is set (which forces a zero
	// residual).
	EvadeAlpha float64
	// ConfineOthers additionally bounds every link outside
	// L_m ∪ L_s to estimate at most uncertain (x̂ ≤ b_u). The paper's
	// formulations leave those links free, so a damage-maximizing
	// solution often drags innocent third links above the abnormal
	// threshold as a side effect; confining them reproduces the clean
	// single-scapegoat shape of Fig. 4 at the cost of some damage.
	ConfineOthers bool

	// Cached derived state (computed by Validate).
	attackerSet   map[graph.NodeID]bool
	attackerLinks map[graph.LinkID]bool
	controlled    []int
	controlledSet map[int]bool
	operator      *la.Matrix
	measuredY     la.Vector
	validated     bool
}

// Validate checks the scenario and precomputes derived state. All
// strategy entry points call it implicitly; calling it twice is cheap.
func (sc *Scenario) Validate() error {
	if sc.validated {
		return nil
	}
	if sc.Sys == nil {
		return fmt.Errorf("core: nil system: %w", ErrBadScenario)
	}
	if err := sc.Thresholds.Validate(); err != nil {
		return fmt.Errorf("core: %v: %w", err, ErrBadScenario)
	}
	if len(sc.Attackers) == 0 {
		return fmt.Errorf("core: no attackers: %w", ErrBadScenario)
	}
	g := sc.Sys.Graph()
	if len(sc.TrueX) != g.NumLinks() {
		return fmt.Errorf("core: TrueX has %d entries, want %d: %w", len(sc.TrueX), g.NumLinks(), ErrBadScenario)
	}
	for i, x := range sc.TrueX {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("core: TrueX[%d] = %g: %w", i, x, ErrBadScenario)
		}
	}
	sc.attackerSet = make(map[graph.NodeID]bool, len(sc.Attackers))
	for _, v := range sc.Attackers {
		if _, err := g.NodeName(v); err != nil {
			return fmt.Errorf("core: attacker %d: %v: %w", v, err, ErrBadScenario)
		}
		if sc.attackerSet[v] {
			return fmt.Errorf("core: duplicate attacker %d: %w", v, ErrBadScenario)
		}
		sc.attackerSet[v] = true
	}
	sc.attackerLinks = g.IncidentLinkSet(sc.Attackers)
	sc.controlled = sc.Sys.PathsWithAnyNode(sc.attackerSet)
	sc.controlledSet = make(map[int]bool, len(sc.controlled))
	for _, i := range sc.controlled {
		sc.controlledSet[i] = true
	}
	op, err := sc.Sys.Operator()
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	sc.operator = op
	y, err := sc.Sys.Measure(sc.TrueX)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	sc.measuredY = y
	sc.validated = true
	return nil
}

// pathCap returns the effective per-path cap (+Inf when unbounded).
func (sc *Scenario) pathCap() float64 {
	switch {
	case sc.PathCap == 0:
		return DefaultPathCap
	case sc.PathCap < 0:
		return math.Inf(1)
	default:
		return sc.PathCap
	}
}

func (sc *Scenario) margin() float64 {
	if sc.Margin <= 0 {
		return DefaultMargin
	}
	return sc.Margin
}

// AttackerLinks returns L_m, the set of links incident to any attacker.
func (sc *Scenario) AttackerLinks() (map[graph.LinkID]bool, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	out := make(map[graph.LinkID]bool, len(sc.attackerLinks))
	for l := range sc.attackerLinks {
		out[l] = true
	}
	return out, nil
}

// ControlledPaths returns the indices of measurement paths carrying at
// least one attacker — the only paths where m may be nonzero
// (Constraint 1).
func (sc *Scenario) ControlledPaths() ([]int, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	out := make([]int, len(sc.controlled))
	copy(out, sc.controlled)
	return out, nil
}

// CleanMeasurements returns y = R·x*, the measurements monitors would
// observe without any attack.
func (sc *Scenario) CleanMeasurements() (la.Vector, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc.measuredY.Clone(), nil
}

// CheckConstraint1 verifies an attack manipulation vector against
// Constraint 1: m ⪰ 0 and m_i = 0 on attacker-free paths.
func (sc *Scenario) CheckConstraint1(m la.Vector) error {
	if err := sc.Validate(); err != nil {
		return err
	}
	if len(m) != sc.Sys.NumPaths() {
		return fmt.Errorf("core: m has %d entries, want %d: %w", len(m), sc.Sys.NumPaths(), ErrBadScenario)
	}
	for i, v := range m {
		if v < -1e-9 {
			return fmt.Errorf("core: m[%d] = %g violates m ⪰ 0", i, v)
		}
		if v > 1e-9 && !sc.controlledSet[i] {
			return fmt.Errorf("core: m[%d] = %g on attacker-free path", i, v)
		}
	}
	return nil
}

// Result is the outcome of running a scapegoating strategy.
type Result struct {
	// Feasible reports whether the strategy found a valid attack.
	Feasible bool
	// LPStatus is the raw solver outcome.
	LPStatus lp.Status
	// M is the attack manipulation vector over all paths (zeros on
	// attacker-free paths). Nil when infeasible.
	M la.Vector
	// Damage is ‖m‖₁ (Definition 2).
	Damage float64
	// YObserved is y' = y + m, what the monitors see.
	YObserved la.Vector
	// XHat is the tomography estimate under attack.
	XHat la.Vector
	// States classifies XHat per Definition 1.
	States []tomo.State
	// Victims is L_s, the scapegoat links (chosen or found).
	Victims []graph.LinkID
	// AvgPathMetric is the mean of YObserved — the "average end-to-end
	// delay" the paper reports for Figs. 4–5.
	AvgPathMetric float64
	// CapShadowPrices maps a path index to the marginal damage an extra
	// millisecond of per-path cap on it would buy (the LP dual of the
	// cap bound). Nonzero entries mark where the cap binds the attack —
	// the paths an attacker gains most from loosening. Only populated
	// by the plain solver with a finite cap.
	CapShadowPrices map[int]float64
}

// SolveWithBounds solves the generic strategy form of Eq. 12:
//
//	maximize ‖m‖₁  s.t.  Constraint 1,  s_l ⪯ x̂(m) ⪯ s_u,  m_i ≤ cap
//
// where x̂(m) = x* + T·m. Entries of sl may be −Inf and entries of su
// may be +Inf to leave a link unconstrained. The returned Result carries
// the solver status; infeasibility is a normal outcome, not an error.
// When the scenario is Stealthy the consistent formulation
// (solveStealthy) is used instead of the plain one.
func (sc *Scenario) SolveWithBounds(sl, su la.Vector) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	nLinks := sc.Sys.NumLinks()
	if len(sl) != nLinks || len(su) != nLinks {
		return nil, fmt.Errorf("core: bounds have %d/%d entries, want %d: %w", len(sl), len(su), nLinks, ErrBadScenario)
	}
	if sc.Stealthy {
		return sc.solveStealthy(sl, su)
	}
	if sc.EvadeAlpha > 0 {
		return sc.solveEvasive(sl, su, sc.EvadeAlpha)
	}
	nv := len(sc.controlled)
	prob := lp.NewProblem(nv)
	obj := make([]float64, nv)
	for j := range obj {
		obj[j] = 1 // maximize Σ m_i = ‖m‖₁ since m ⪰ 0
	}
	if err := prob.SetObjective(obj); err != nil {
		return nil, err
	}
	capVal := sc.pathCap()
	if !math.IsInf(capVal, 1) {
		for j := 0; j < nv; j++ {
			if err := prob.SetUpperBound(j, capVal); err != nil {
				return nil, err
			}
		}
	}
	// Link bound rows: Σ_j T[l][path_j]·m_j {≤,≥} bound − x*_l.
	row := make([]float64, nv)
	for l := 0; l < nLinks; l++ {
		lo, hi := sl[l], su[l]
		if math.IsInf(lo, -1) && math.IsInf(hi, 1) {
			continue
		}
		for j, pi := range sc.controlled {
			row[j] = sc.operator.At(l, pi)
		}
		if !math.IsInf(hi, 1) {
			if err := prob.AddConstraint(row, lp.LE, hi-sc.TrueX[l]); err != nil {
				return nil, err
			}
		}
		if !math.IsInf(lo, -1) {
			if err := prob.AddConstraint(row, lp.GE, lo-sc.TrueX[l]); err != nil {
				return nil, err
			}
		}
	}
	sol, err := lp.Solve(prob)
	if err != nil {
		return nil, fmt.Errorf("core: LP solve: %w", err)
	}
	res := &Result{LPStatus: sol.Status}
	if sol.Status != lp.Optimal {
		return res, nil
	}
	res.Feasible = true
	m := make(la.Vector, sc.Sys.NumPaths())
	for j, pi := range sc.controlled {
		m[pi] = sol.X[j]
	}
	res.M = m
	res.Damage = m.Norm1()
	if len(sol.BoundDuals) == len(sc.controlled) {
		prices := make(map[int]float64)
		for j, pi := range sc.controlled {
			if d := sol.BoundDuals[j]; d > 1e-9 {
				prices[pi] = d
			}
		}
		if len(prices) > 0 {
			res.CapShadowPrices = prices
		}
	}
	yObs, err := sc.measuredY.Add(m)
	if err != nil {
		return nil, err
	}
	res.YObserved = yObs
	xhat, err := sc.Sys.Estimate(yObs)
	if err != nil {
		return nil, err
	}
	res.XHat = xhat
	res.States = sc.Thresholds.ClassifyAll(xhat)
	res.AvgPathMetric = yObs.Mean()
	return res, nil
}

// maxRaise returns, per link, the largest achievable increase of the
// estimate: Σ_i max(T[l][i], 0)·cap over controlled paths. Used to prune
// victim candidates before spending LP solves on them.
func (sc *Scenario) maxRaise() la.Vector {
	capVal := sc.pathCap()
	if math.IsInf(capVal, 1) {
		capVal = 1e12 // pruning heuristic only; effectively unbounded
	}
	out := make(la.Vector, sc.Sys.NumLinks())
	for l := range out {
		var s float64
		for _, pi := range sc.controlled {
			if t := sc.operator.At(l, pi); t > 0 {
				s += t * capVal
			}
		}
		out[l] = s
	}
	return out
}
