package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/tomo"
)

// FindPerfectCutAttackers searches for a small attacker set that
// perfectly cuts the victim links: every measurement path containing a
// victim link must carry at least one attacker, and no attacker may be
// an endpoint of a victim link (Eq. 7 forbids L_m ∩ L_s ≠ ∅).
//
// This answers the attacker's planning question behind Theorem 1 —
// "which nodes must I compromise to frame link X undetectably?" — and
// the operator's dual — "how many compromised nodes does it take?".
// The problem is set cover (NP-hard in general); for maxSize ≤ 3 an
// exact search over subsets runs first, then a greedy cover rounds out
// larger answers. Returns nil with no error when no set within maxSize
// exists.
func FindPerfectCutAttackers(sys *tomo.System, victims []graph.LinkID, maxSize int) ([]graph.NodeID, error) {
	if sys == nil {
		return nil, fmt.Errorf("core: nil system: %w", ErrBadScenario)
	}
	if maxSize <= 0 {
		return nil, fmt.Errorf("core: maxSize %d: %w", maxSize, ErrBadScenario)
	}
	g := sys.Graph()
	victimSet := make(map[graph.LinkID]bool, len(victims))
	excluded := make(map[graph.NodeID]bool) // victim endpoints
	for _, l := range victims {
		link, err := g.Link(l)
		if err != nil {
			return nil, fmt.Errorf("core: victim %d: %v: %w", l, err, ErrBadScenario)
		}
		victimSet[l] = true
		excluded[link.A] = true
		excluded[link.B] = true
	}
	// Paths to cover, each as its usable node set.
	var pathNodeSets []map[graph.NodeID]bool
	counts := make(map[graph.NodeID]int) // how many victim paths each node covers
	for _, p := range sys.Paths() {
		if !p.HasAnyLink(victimSet) {
			continue
		}
		set := make(map[graph.NodeID]bool)
		for _, v := range p.Nodes {
			if !excluded[v] {
				set[v] = true
				counts[v]++
			}
		}
		if len(set) == 0 {
			return nil, nil // a victim path with no usable node: uncoverable
		}
		pathNodeSets = append(pathNodeSets, set)
	}
	if len(pathNodeSets) == 0 {
		return nil, nil // victims on no path: vacuous, nothing to cover
	}

	candidates := make([]graph.NodeID, 0, len(counts))
	for v := range counts {
		candidates = append(candidates, v)
	}
	sort.Slice(candidates, func(a, b int) bool {
		if counts[candidates[a]] != counts[candidates[b]] {
			return counts[candidates[a]] > counts[candidates[b]]
		}
		return candidates[a] < candidates[b]
	})

	covers := func(set []graph.NodeID) bool {
		for _, ps := range pathNodeSets {
			ok := false
			for _, v := range set {
				if ps[v] {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}

	// Exact search for very small sets (bounded work: C(n,3) on ≤ a few
	// hundred candidates).
	exactCap := maxSize
	if exactCap > 3 {
		exactCap = 3
	}
	if len(candidates) <= 400 {
		for size := 1; size <= exactCap; size++ {
			if set := searchSubsets(candidates, size, covers); set != nil {
				return set, nil
			}
		}
	}
	if maxSize <= exactCap && len(candidates) <= 400 {
		return nil, nil
	}

	// Greedy cover for larger budgets.
	remaining := make([]map[graph.NodeID]bool, len(pathNodeSets))
	copy(remaining, pathNodeSets)
	var chosen []graph.NodeID
	for len(remaining) > 0 && len(chosen) < maxSize {
		best, bestCover := graph.NodeID(-1), -1
		for _, v := range candidates {
			c := 0
			for _, ps := range remaining {
				if ps[v] {
					c++
				}
			}
			if c > bestCover {
				best, bestCover = v, c
			}
		}
		if bestCover <= 0 {
			return nil, nil
		}
		chosen = append(chosen, best)
		var next []map[graph.NodeID]bool
		for _, ps := range remaining {
			if !ps[best] {
				next = append(next, ps)
			}
		}
		remaining = next
	}
	if len(remaining) > 0 {
		return nil, nil
	}
	sort.Slice(chosen, func(a, b int) bool { return chosen[a] < chosen[b] })
	return chosen, nil
}

// searchSubsets tries every size-k subset of candidates (in the given
// order) and returns the first one accepted by covers.
func searchSubsets(candidates []graph.NodeID, k int, covers func([]graph.NodeID) bool) []graph.NodeID {
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	n := len(candidates)
	if k > n {
		return nil
	}
	set := make([]graph.NodeID, k)
	for {
		for i, j := range idx {
			set[i] = candidates[j]
		}
		if covers(set) {
			out := make([]graph.NodeID, k)
			copy(out, set)
			return out
		}
		// Advance the combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return nil
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
