package core

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/tomo"
	"repro/internal/topo"
)

func TestChosenVictimLink10(t *testing.T) {
	// The paper's Fig. 4: B and C scapegoat link 10 (D–M2), which they
	// do NOT perfectly cut (path M3–D–M2 is attacker-free), and the
	// attack still succeeds.
	f, sc := fig1Scenario(t, 42)
	victim := f.PaperLink[10]
	pc, err := PerfectCut(sc.Sys, sc.Attackers, []graph.LinkID{victim})
	if err != nil {
		t.Fatal(err)
	}
	if pc {
		t.Fatal("link 10 should not be perfectly cut by {B, C}")
	}
	res, err := ChosenVictim(sc, []graph.LinkID{victim})
	if err != nil {
		t.Fatalf("ChosenVictim: %v", err)
	}
	if !res.Feasible {
		t.Fatal("chosen-victim on link 10 infeasible; the paper demonstrates it succeeds")
	}
	assertScapegoat(t, sc, res, []graph.LinkID{victim})
	if res.AvgPathMetric <= 0 {
		t.Error("AvgPathMetric not computed")
	}
}

func TestChosenVictimPerfectCutAlwaysFeasible(t *testing.T) {
	// Theorem 1: link 1 (M1–A) is perfectly cut by {B, C} — every path
	// through it continues into B or C. Feasibility must hold for every
	// random metric draw.
	for seed := int64(0); seed < 10; seed++ {
		f, sc := fig1Scenario(t, seed)
		victim := f.PaperLink[1]
		pc, err := PerfectCut(sc.Sys, sc.Attackers, []graph.LinkID{victim})
		if err != nil {
			t.Fatal(err)
		}
		if !pc {
			t.Fatal("link 1 should be perfectly cut by {B, C}")
		}
		res, err := ChosenVictim(sc, []graph.LinkID{victim})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Feasible {
			t.Errorf("seed %d: perfect-cut chosen-victim infeasible, contradicts Theorem 1", seed)
		}
		assertScapegoat(t, sc, res, []graph.LinkID{victim})
	}
}

// assertScapegoat checks the semantic goals of a successful attack:
// Constraint 1 holds, victims classify abnormal, attacker links classify
// normal, and the observed measurements equal y + m.
func assertScapegoat(t *testing.T, sc *Scenario, res *Result, victims []graph.LinkID) {
	t.Helper()
	if err := sc.CheckConstraint1(res.M); err != nil {
		t.Errorf("Constraint 1: %v", err)
	}
	for _, l := range victims {
		if res.States[l] != tomo.Abnormal {
			t.Errorf("victim link %d state = %v (x̂ = %.1f), want abnormal", l, res.States[l], res.XHat[l])
		}
	}
	links, err := sc.AttackerLinks()
	if err != nil {
		t.Fatal(err)
	}
	for l := range links {
		if res.States[l] != tomo.Normal {
			t.Errorf("attacker link %d state = %v (x̂ = %.1f), want normal", l, res.States[l], res.XHat[l])
		}
	}
	y, _ := sc.CleanMeasurements()
	sum, _ := y.Add(res.M)
	if !sum.Equal(res.YObserved, 1e-9) {
		t.Error("YObserved ≠ y + m")
	}
	if res.Damage <= 0 {
		t.Error("zero damage on feasible attack")
	}
	// Per-path damage must respect the cap.
	for i, v := range res.M {
		if v > sc.pathCap()+1e-6 {
			t.Errorf("m[%d] = %g exceeds cap", i, v)
		}
	}
}

func TestChosenVictimValidation(t *testing.T) {
	f, sc := fig1Scenario(t, 1)
	if _, err := ChosenVictim(sc, nil); !errors.Is(err, ErrBadScenario) {
		t.Errorf("empty victims: err = %v", err)
	}
	if _, err := ChosenVictim(sc, []graph.LinkID{99}); !errors.Is(err, ErrBadScenario) {
		t.Errorf("unknown victim: err = %v", err)
	}
	// Victim inside L_m violates Eq. 7.
	if _, err := ChosenVictim(sc, []graph.LinkID{f.PaperLink[3]}); !errors.Is(err, ErrBadScenario) {
		t.Errorf("attacker-link victim: err = %v", err)
	}
	dup := []graph.LinkID{f.PaperLink[10], f.PaperLink[10]}
	if _, err := ChosenVictim(sc, dup); !errors.Is(err, ErrBadScenario) {
		t.Errorf("duplicate victim: err = %v", err)
	}
}

func TestMaxDamageBeatsEveryChosenVictim(t *testing.T) {
	// Eq. 8 optimizes over victim sets, so its damage must dominate
	// every single-victim chosen attack (the paper: maximum-damage
	// attacks "are always more likely" and inflict the most damage).
	f, sc := fig1Scenario(t, 42)
	best, err := MaxDamage(sc, MaxDamageOptions{})
	if err != nil {
		t.Fatalf("MaxDamage: %v", err)
	}
	if !best.Feasible {
		t.Fatal("max-damage infeasible on Fig1 with two attackers")
	}
	if len(best.Victims) == 0 {
		t.Fatal("no victims reported")
	}
	assertScapegoat(t, sc, best, best.Victims)
	for num := 1; num <= 10; num++ {
		l := f.PaperLink[num]
		links, _ := sc.AttackerLinks()
		if links[l] {
			continue
		}
		res, err := ChosenVictim(sc, []graph.LinkID{l})
		if err != nil {
			t.Fatal(err)
		}
		if res.Feasible && res.Damage > best.Damage+1e-6 {
			t.Errorf("single victim %d damage %.1f beats max-damage %.1f", num, res.Damage, best.Damage)
		}
	}
}

func TestMaxDamageRestrictedCandidates(t *testing.T) {
	f, sc := fig1Scenario(t, 7)
	res, err := MaxDamage(sc, MaxDamageOptions{Candidates: []graph.LinkID{f.PaperLink[10]}, MaxVictims: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("restricted max-damage infeasible")
	}
	if len(res.Victims) != 1 || res.Victims[0] != f.PaperLink[10] {
		t.Errorf("victims = %v, want [link10]", res.Victims)
	}
	if _, err := MaxDamage(sc, MaxDamageOptions{Candidates: []graph.LinkID{99}}); !errors.Is(err, ErrBadScenario) {
		t.Errorf("bad candidate: err = %v", err)
	}
}

func TestObfuscateFig1(t *testing.T) {
	// The paper's Fig. 6: all link estimates land in the uncertain band.
	_, sc := fig1Scenario(t, 42)
	res, err := Obfuscate(sc, ObfuscationOptions{MinVictims: 1})
	if err != nil {
		t.Fatalf("Obfuscate: %v", err)
	}
	if !res.Feasible {
		t.Fatal("obfuscation infeasible on Fig1")
	}
	if err := sc.CheckConstraint1(res.M); err != nil {
		t.Errorf("Constraint 1: %v", err)
	}
	links, _ := sc.AttackerLinks()
	// Every attacker link and every victim must be uncertain (Eq. 10).
	for l := range links {
		if res.States[l] != tomo.Uncertain {
			t.Errorf("attacker link %d state = %v (x̂=%.1f), want uncertain", l, res.States[l], res.XHat[l])
		}
	}
	for _, l := range res.Victims {
		if res.States[l] != tomo.Uncertain {
			t.Errorf("victim link %d state = %v (x̂=%.1f), want uncertain", l, res.States[l], res.XHat[l])
		}
		if links[l] {
			t.Errorf("victim %d is an attacker link", l)
		}
	}
	if res.Damage <= 0 {
		t.Error("zero damage")
	}
}

func TestObfuscateMinVictimsUnreachable(t *testing.T) {
	// Demanding more uncertain victims than the network has links must
	// fail cleanly.
	_, sc := fig1Scenario(t, 42)
	res, err := Obfuscate(sc, ObfuscationOptions{MinVictims: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Error("50 victims on a 10-link network reported feasible")
	}
}

func TestPerfectCutAndPresenceRatio(t *testing.T) {
	f, sc := fig1Scenario(t, 1)
	// Link 1: perfect cut (ratio 1).
	r1, err := PresenceRatio(sc.Sys, sc.Attackers, []graph.LinkID{f.PaperLink[1]})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != 1 {
		t.Errorf("presence ratio for link 1 = %g, want 1", r1)
	}
	// Link 10: imperfect (path M3–D–M2 uncovered).
	r10, err := PresenceRatio(sc.Sys, sc.Attackers, []graph.LinkID{f.PaperLink[10]})
	if err != nil {
		t.Fatal(err)
	}
	if r10 >= 1 || r10 <= 0 {
		t.Errorf("presence ratio for link 10 = %g, want in (0,1)", r10)
	}
	pc10, _ := PerfectCut(sc.Sys, sc.Attackers, []graph.LinkID{f.PaperLink[10]})
	if pc10 {
		t.Error("link 10 reported perfectly cut")
	}
	// Errors.
	if _, err := PerfectCut(nil, nil, nil); !errors.Is(err, ErrBadScenario) {
		t.Errorf("nil system: err = %v", err)
	}
	if _, err := PresenceRatio(sc.Sys, []graph.NodeID{99}, nil); !errors.Is(err, ErrBadScenario) {
		t.Errorf("bad attacker: err = %v", err)
	}
	if _, err := PresenceRatio(sc.Sys, sc.Attackers, []graph.LinkID{99}); !errors.Is(err, ErrBadScenario) {
		t.Errorf("bad victim: err = %v", err)
	}
}

func TestPresenceRatioNoVictimPaths(t *testing.T) {
	// Build a system whose single path avoids the victim link entirely.
	f := topo.Fig1()
	p := graph.Path{
		Nodes: []graph.NodeID{f.M3, f.D, f.M2},
		Links: []graph.LinkID{f.PaperLink[9], f.PaperLink[10]},
	}
	sys, err := tomo.NewSystem(f.G, []graph.Path{p})
	if err != nil {
		t.Fatal(err)
	}
	r, err := PresenceRatio(sys, []graph.NodeID{f.B}, []graph.LinkID{f.PaperLink[1]})
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Errorf("vacuous presence ratio = %g, want 1", r)
	}
}

func TestTheorem1PropertyPerfectCutFeasible(t *testing.T) {
	// Theorem 1 across many random metric draws: perfect cut ⇒ feasible,
	// for both chosen-victim and (by inclusion) max-damage.
	for seed := int64(100); seed < 115; seed++ {
		f, sc := fig1Scenario(t, seed)
		res, err := ChosenVictim(sc, []graph.LinkID{f.PaperLink[1]})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			t.Errorf("seed %d: Theorem 1 violated", seed)
		}
	}
}

func TestMaxDamageGreedyGrowthImproves(t *testing.T) {
	// With MaxVictims = 3 the greedy search must never do worse than
	// with MaxVictims = 1.
	_, sc := fig1Scenario(t, 42)
	one, err := MaxDamage(sc, MaxDamageOptions{MaxVictims: 1})
	if err != nil {
		t.Fatal(err)
	}
	three, err := MaxDamage(sc, MaxDamageOptions{MaxVictims: 3})
	if err != nil {
		t.Fatal(err)
	}
	if three.Damage < one.Damage-1e-9 {
		t.Errorf("greedy growth lost damage: %f < %f", three.Damage, one.Damage)
	}
}
