package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/tomo"
	"repro/internal/topo"
)

// fig1Scenario builds the paper's running example: Fig. 1 topology,
// 23 identifiable paths, attackers {B, C}, routine delays U[1,20] ms.
func fig1Scenario(t *testing.T, seed int64) (*topo.Fig1Topology, *Scenario) {
	t.Helper()
	f := topo.Fig1()
	paths, rank, err := tomo.SelectPaths(f.G, f.Monitors, tomo.SelectOptions{Exhaustive: true, TargetPaths: 23})
	if err != nil {
		t.Fatalf("SelectPaths: %v", err)
	}
	if rank != f.G.NumLinks() {
		t.Fatalf("rank = %d", rank)
	}
	sys, err := tomo.NewSystem(f.G, paths)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	rng := rand.New(rand.NewSource(seed))
	x := make(la.Vector, f.G.NumLinks())
	for i := range x {
		x[i] = 1 + rng.Float64()*19
	}
	sc := &Scenario{
		Sys:        sys,
		Thresholds: tomo.DefaultThresholds(),
		Attackers:  f.Attackers,
		TrueX:      x,
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return f, sc
}

func TestScenarioValidate(t *testing.T) {
	f, sc := fig1Scenario(t, 1)
	if err := sc.Validate(); err != nil {
		t.Fatalf("second Validate: %v", err)
	}
	links, err := sc.AttackerLinks()
	if err != nil {
		t.Fatal(err)
	}
	// L_m = links incident to B or C = paper links 2–8.
	if len(links) != 7 {
		t.Errorf("|L_m| = %d, want 7", len(links))
	}
	for num := 2; num <= 8; num++ {
		if !links[f.PaperLink[num]] {
			t.Errorf("paper link %d missing from L_m", num)
		}
	}
}

func TestScenarioValidateErrors(t *testing.T) {
	f, good := fig1Scenario(t, 1)
	tests := []struct {
		name string
		mut  func(sc *Scenario)
	}{
		{"nil system", func(sc *Scenario) { sc.Sys = nil }},
		{"bad thresholds", func(sc *Scenario) { sc.Thresholds = tomo.Thresholds{Lower: 5, Upper: 1} }},
		{"no attackers", func(sc *Scenario) { sc.Attackers = nil }},
		{"duplicate attackers", func(sc *Scenario) { sc.Attackers = []graph.NodeID{f.B, f.B} }},
		{"unknown attacker", func(sc *Scenario) { sc.Attackers = []graph.NodeID{99} }},
		{"short TrueX", func(sc *Scenario) { sc.TrueX = la.Vector{1} }},
		{"negative TrueX", func(sc *Scenario) { sc.TrueX = make(la.Vector, 10); sc.TrueX[0] = -1 }},
		{"NaN TrueX", func(sc *Scenario) { sc.TrueX = make(la.Vector, 10); sc.TrueX[0] = math.NaN() }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sc := &Scenario{
				Sys:        good.Sys,
				Thresholds: good.Thresholds,
				Attackers:  good.Attackers,
				TrueX:      good.TrueX,
			}
			tt.mut(sc)
			if err := sc.Validate(); !errors.Is(err, ErrBadScenario) && err == nil {
				t.Errorf("err = %v, want ErrBadScenario", err)
			}
		})
	}
}

func TestControlledPaths(t *testing.T) {
	f, sc := fig1Scenario(t, 1)
	controlled, err := sc.ControlledPaths()
	if err != nil {
		t.Fatal(err)
	}
	if len(controlled) == 0 || len(controlled) >= sc.Sys.NumPaths() {
		t.Fatalf("controlled = %d of %d; expected a proper subset (path 17 is attacker-free)",
			len(controlled), sc.Sys.NumPaths())
	}
	mal := map[graph.NodeID]bool{f.B: true, f.C: true}
	inSet := make(map[int]bool)
	for _, i := range controlled {
		inSet[i] = true
		if !sc.Sys.Paths()[i].HasAnyNode(mal) {
			t.Errorf("controlled path %d has no attacker", i)
		}
	}
	for i, p := range sc.Sys.Paths() {
		if !inSet[i] && p.HasAnyNode(mal) {
			t.Errorf("uncontrolled path %d has an attacker", i)
		}
	}
}

func TestCheckConstraint1(t *testing.T) {
	_, sc := fig1Scenario(t, 1)
	controlled, _ := sc.ControlledPaths()
	m := make(la.Vector, sc.Sys.NumPaths())
	m[controlled[0]] = 100
	if err := sc.CheckConstraint1(m); err != nil {
		t.Errorf("valid m rejected: %v", err)
	}
	m[controlled[0]] = -5
	if err := sc.CheckConstraint1(m); err == nil {
		t.Error("negative m accepted")
	}
	// Find an uncontrolled path.
	inSet := make(map[int]bool)
	for _, i := range controlled {
		inSet[i] = true
	}
	free := -1
	for i := 0; i < sc.Sys.NumPaths(); i++ {
		if !inSet[i] {
			free = i
			break
		}
	}
	if free < 0 {
		t.Fatal("no attacker-free path in Fig1 system")
	}
	m = make(la.Vector, sc.Sys.NumPaths())
	m[free] = 1
	if err := sc.CheckConstraint1(m); err == nil {
		t.Error("manipulation on attacker-free path accepted")
	}
	if err := sc.CheckConstraint1(la.Vector{1}); err == nil {
		t.Error("short m accepted")
	}
}

func TestCleanMeasurements(t *testing.T) {
	_, sc := fig1Scenario(t, 1)
	y, err := sc.CleanMeasurements()
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != sc.Sys.NumPaths() {
		t.Fatalf("len(y) = %d", len(y))
	}
	// Each measurement is the sum of 1–20 ms links: positive, bounded.
	for i, v := range y {
		hops := float64(sc.Sys.Paths()[i].Len())
		if v < hops*1 || v > hops*20 {
			t.Errorf("y[%d] = %g outside [%g, %g]", i, v, hops, hops*20)
		}
	}
	// Mutating the returned slice must not corrupt the scenario.
	y[0] = -999
	y2, _ := sc.CleanMeasurements()
	if y2[0] == -999 {
		t.Error("CleanMeasurements exposes internal storage")
	}
}

func TestPathCapDefaults(t *testing.T) {
	sc := &Scenario{}
	if got := sc.pathCap(); got != DefaultPathCap {
		t.Errorf("default cap = %g", got)
	}
	sc.PathCap = -1
	if got := sc.pathCap(); !math.IsInf(got, 1) {
		t.Errorf("negative cap = %g, want +Inf", got)
	}
	sc.PathCap = 500
	if got := sc.pathCap(); got != 500 {
		t.Errorf("explicit cap = %g", got)
	}
	if (&Scenario{}).margin() != DefaultMargin {
		t.Error("default margin wrong")
	}
}

func TestSolveWithBoundsShapeError(t *testing.T) {
	_, sc := fig1Scenario(t, 1)
	if _, err := sc.SolveWithBounds(la.Vector{1}, la.Vector{2}); !errors.Is(err, ErrBadScenario) {
		t.Errorf("err = %v, want ErrBadScenario", err)
	}
}

func TestSolveWithBoundsUnconstrainedMaximizesCap(t *testing.T) {
	// With no link bounds at all, the LP pushes every controlled path to
	// the cap: damage = cap × |controlled paths|.
	_, sc := fig1Scenario(t, 1)
	sl, su := sc.unboundedBounds()
	res, err := sc.SolveWithBounds(sl, su)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("unconstrained solve infeasible")
	}
	controlled, _ := sc.ControlledPaths()
	want := DefaultPathCap * float64(len(controlled))
	if math.Abs(res.Damage-want) > 1e-6 {
		t.Errorf("damage = %g, want %g", res.Damage, want)
	}
	if err := sc.CheckConstraint1(res.M); err != nil {
		t.Errorf("Constraint 1 violated: %v", err)
	}
}
