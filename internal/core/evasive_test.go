package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/tomo"
)

func TestEvasiveStaysUnderThreshold(t *testing.T) {
	// An α-evading attack on the imperfectly cut link 10 must keep the
	// residual at or below α — invisible to a detector tuned to α.
	for _, alpha := range []float64{200, 500, 1000} {
		f, sc := fig1Scenario(t, 21)
		sc.EvadeAlpha = alpha
		res, err := ChosenVictim(sc, []graph.LinkID{f.PaperLink[10]})
		if err != nil {
			t.Fatalf("alpha=%g: %v", alpha, err)
		}
		if !res.Feasible {
			t.Logf("alpha=%g: infeasible (acceptable if the budget is too tight)", alpha)
			continue
		}
		if rn := residualNorm(t, sc, res); rn > alpha+1e-6 {
			t.Errorf("alpha=%g: residual %g exceeds budget", alpha, rn)
		}
		assertScapegoat(t, sc, res, []graph.LinkID{f.PaperLink[10]})
	}
}

func TestEvasiveDamageMonotoneInAlpha(t *testing.T) {
	// A looser residual budget can only allow more damage, and the
	// unconstrained plain attack is the α→∞ limit.
	f, sc0 := fig1Scenario(t, 22)
	plain, err := ChosenVictim(sc0, []graph.LinkID{f.PaperLink[10]})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Feasible {
		t.Fatal("plain attack infeasible")
	}
	prev := -1.0
	for _, alpha := range []float64{500, 2000, 8000, 50000} {
		_, sc := fig1Scenario(t, 22)
		sc.EvadeAlpha = alpha
		res, err := ChosenVictim(sc, []graph.LinkID{f.PaperLink[10]})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			continue
		}
		if res.Damage < prev-1e-6 {
			t.Errorf("alpha=%g: damage %.1f below smaller-budget damage %.1f", alpha, res.Damage, prev)
		}
		prev = res.Damage
		if res.Damage > plain.Damage+1e-6 {
			t.Errorf("alpha=%g: evasive damage %.1f exceeds unconstrained %.1f", alpha, res.Damage, plain.Damage)
		}
	}
	if prev < 0 {
		t.Error("no evasive budget was feasible")
	}
}

func TestEvasiveTighterThanPossibleInfeasible(t *testing.T) {
	// Link 10 is imperfectly cut, so a (near-)zero residual budget plus
	// an abnormal-victim demand cannot be met (Theorem 3's converse,
	// approached through the budget).
	f, sc := fig1Scenario(t, 23)
	sc.EvadeAlpha = 1e-6
	res, err := ChosenVictim(sc, []graph.LinkID{f.PaperLink[10]})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Error("near-zero residual budget feasible on imperfect cut; contradicts Theorem 3")
	}
}

func TestEvasivePerfectCutMatchesStealthy(t *testing.T) {
	// On the perfectly cut link 1, a tiny budget is feasible (the
	// stealthy construction is a witness) and the result stays under it.
	f, sc := fig1Scenario(t, 24)
	sc.EvadeAlpha = 1.0
	res, err := ChosenVictim(sc, []graph.LinkID{f.PaperLink[1]})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("tiny-budget evasive attack infeasible on perfect cut")
	}
	if rn := residualNorm(t, sc, res); rn > 1.0+1e-6 {
		t.Errorf("residual %g exceeds 1 ms budget", rn)
	}
	if res.States[f.PaperLink[1]] != tomo.Abnormal {
		t.Error("victim not abnormal")
	}
}

func TestStealthyPrecedesEvasive(t *testing.T) {
	// When both flags are set, Stealthy wins (zero residual).
	f, sc := fig1Scenario(t, 25)
	sc.Stealthy = true
	sc.EvadeAlpha = 1e9
	res, err := ChosenVictim(sc, []graph.LinkID{f.PaperLink[1]})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("infeasible")
	}
	if rn := residualNorm(t, sc, res); rn > 1e-6 {
		t.Errorf("stealthy residual %g, want 0", rn)
	}
}
