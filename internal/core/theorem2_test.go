package core

import (
	"testing"

	"repro/internal/graph"
)

// TestTheorem2MonotoneFeasibility checks Theorem 2's mechanism on the
// Fig. 1 network: enlarging the attacker set from {B} to {B, C} can only
// enlarge the set of manipulable paths (M_k ⊂ M_s in the proof), so any
// victim feasible for {B} stays feasible for {B, C}, and the presence
// ratio never decreases.
func TestTheorem2MonotoneFeasibility(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		f, scBase := fig1Scenario(t, seed)
		small := []graph.NodeID{f.B}
		large := []graph.NodeID{f.B, f.C}
		for num := 9; num <= 10; num++ {
			victim := f.PaperLink[num]
			rSmall, err := PresenceRatio(scBase.Sys, small, []graph.LinkID{victim})
			if err != nil {
				t.Fatal(err)
			}
			rLarge, err := PresenceRatio(scBase.Sys, large, []graph.LinkID{victim})
			if err != nil {
				t.Fatal(err)
			}
			if rLarge < rSmall {
				t.Errorf("seed %d link %d: presence ratio shrank %g → %g when adding an attacker",
					seed, num, rSmall, rLarge)
			}
			scSmall := &Scenario{
				Sys:        scBase.Sys,
				Thresholds: scBase.Thresholds,
				Attackers:  small,
				TrueX:      scBase.TrueX,
			}
			resSmall, err := ChosenVictim(scSmall, []graph.LinkID{victim})
			if err != nil {
				t.Fatal(err)
			}
			if !resSmall.Feasible {
				continue
			}
			scLarge := &Scenario{
				Sys:        scBase.Sys,
				Thresholds: scBase.Thresholds,
				Attackers:  large,
				TrueX:      scBase.TrueX,
			}
			resLarge, err := ChosenVictim(scLarge, []graph.LinkID{victim})
			if err != nil {
				t.Fatal(err)
			}
			if !resLarge.Feasible {
				t.Errorf("seed %d link %d: feasible for {B} but infeasible for {B,C} — violates Theorem 2's inclusion",
					seed, num)
			}
			if resLarge.Damage < resSmall.Damage-1e-6 {
				t.Errorf("seed %d link %d: damage shrank %g → %g with more attackers",
					seed, num, resSmall.Damage, resLarge.Damage)
			}
		}
	}
}
