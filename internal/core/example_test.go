package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/tomo"
	"repro/internal/topo"
)

// ExampleChosenVictim frames link 10 of the paper's Fig. 1 network: the
// attackers B and C delay probes on their paths so that tomography
// blames an innocent link while their own links look healthy.
func ExampleChosenVictim() {
	f := topo.Fig1()
	paths, _, err := tomo.SelectPaths(f.G, f.Monitors, tomo.SelectOptions{Exhaustive: true, TargetPaths: 23})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := tomo.NewSystem(f.G, paths)
	if err != nil {
		log.Fatal(err)
	}
	// Fixed routine delays: every link truly runs at 10 ms.
	x := make(la.Vector, f.G.NumLinks())
	for i := range x {
		x[i] = 10
	}
	sc := &core.Scenario{
		Sys:        sys,
		Thresholds: tomo.DefaultThresholds(),
		Attackers:  f.Attackers, // nodes B and C
		TrueX:      x,
	}
	res, err := core.ChosenVictim(sc, []graph.LinkID{f.PaperLink[10]})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("feasible:", res.Feasible)
	fmt.Println("victim state:", res.States[f.PaperLink[10]])
	links, err := sc.AttackerLinks()
	if err != nil {
		log.Fatal(err)
	}
	normal := true
	for l := range links {
		if res.States[l] != tomo.Normal {
			normal = false
		}
	}
	fmt.Println("attacker links all normal:", normal)
	// Output:
	// feasible: true
	// victim state: abnormal
	// attacker links all normal: true
}

// ExamplePerfectCut shows the structural condition behind Theorem 1:
// every measurement path through link 1 carries B or C, so the pair
// perfectly cuts it — while link 10 stays reachable around them.
func ExamplePerfectCut() {
	f := topo.Fig1()
	paths, _, err := tomo.SelectPaths(f.G, f.Monitors, tomo.SelectOptions{Exhaustive: true, TargetPaths: 23})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := tomo.NewSystem(f.G, paths)
	if err != nil {
		log.Fatal(err)
	}
	cut1, err := core.PerfectCut(sys, f.Attackers, []graph.LinkID{f.PaperLink[1]})
	if err != nil {
		log.Fatal(err)
	}
	cut10, err := core.PerfectCut(sys, f.Attackers, []graph.LinkID{f.PaperLink[10]})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("link 1 perfectly cut:", cut1)
	fmt.Println("link 10 perfectly cut:", cut10)
	// Output:
	// link 1 perfectly cut: true
	// link 10 perfectly cut: false
}
