package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/tomo"
)

func TestChosenVictimMultipleVictims(t *testing.T) {
	// Framing several innocent links at once: both victims must cross
	// b_u simultaneously while attacker links stay normal.
	f, sc := fig1Scenario(t, 42)
	victims := []graph.LinkID{f.PaperLink[9], f.PaperLink[10]}
	res, err := ChosenVictim(sc, victims)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Skip("two-victim attack infeasible on this draw — acceptable, more constraints")
	}
	assertScapegoat(t, sc, res, victims)
	// Damage cannot exceed the single-victim optimum for either victim
	// alone (every extra victim adds constraints).
	for _, v := range victims {
		single, err := ChosenVictim(sc, []graph.LinkID{v})
		if err != nil {
			t.Fatal(err)
		}
		if single.Feasible && res.Damage > single.Damage+1e-6 {
			t.Errorf("two-victim damage %.1f exceeds single-victim %.1f", res.Damage, single.Damage)
		}
	}
}

func TestChosenVictimMultiVictimSubsetOfSingles(t *testing.T) {
	// If the pair is feasible, each single must be feasible too
	// (dropping constraints keeps feasibility).
	f, sc := fig1Scenario(t, 13)
	victims := []graph.LinkID{f.PaperLink[9], f.PaperLink[10]}
	pair, err := ChosenVictim(sc, victims)
	if err != nil {
		t.Fatal(err)
	}
	if !pair.Feasible {
		t.Skip("pair infeasible on this draw")
	}
	for _, v := range victims {
		single, err := ChosenVictim(sc, []graph.LinkID{v})
		if err != nil {
			t.Fatal(err)
		}
		if !single.Feasible {
			t.Errorf("pair feasible but single victim %d infeasible", v)
		}
	}
}

func TestEvasiveObfuscate(t *testing.T) {
	// Evasion composes with obfuscation: the uncertain band AND a
	// residual budget together.
	_, sc := fig1Scenario(t, 17)
	sc.EvadeAlpha = 5000
	res, err := Obfuscate(sc, ObfuscationOptions{MinVictims: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Skip("evasive obfuscation infeasible on this draw")
	}
	if rn := residualNorm(t, sc, res); rn > 5000+1e-6 {
		t.Errorf("residual %g exceeds evasion budget", rn)
	}
	links, _ := sc.AttackerLinks()
	for l := range links {
		if res.States[l] != tomo.Uncertain {
			t.Errorf("attacker link %d state %v", l, res.States[l])
		}
	}
}

func TestConfinedEvasiveChosenVictim(t *testing.T) {
	// All three refinements at once: confined third links, evasion
	// budget, chosen victim.
	f, sc := fig1Scenario(t, 19)
	sc.ConfineOthers = true
	sc.EvadeAlpha = 8000
	res, err := ChosenVictim(sc, []graph.LinkID{f.PaperLink[10]})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Skip("confined evasive attack infeasible on this draw")
	}
	if rn := residualNorm(t, sc, res); rn > 8000+1e-6 {
		t.Errorf("residual %g exceeds budget", rn)
	}
	th := sc.Thresholds
	for l := 0; l < sc.Sys.NumLinks(); l++ {
		lid := graph.LinkID(l)
		if lid == f.PaperLink[10] {
			continue
		}
		if th.Classify(res.XHat[l]) == tomo.Abnormal {
			t.Errorf("confined run left link %d abnormal", l+1)
		}
	}
}

func TestStealthyRespectsCapOnAllPaths(t *testing.T) {
	f, sc := fig1Scenario(t, 23)
	sc.Stealthy = true
	sc.PathCap = 900
	res, err := ChosenVictim(sc, []graph.LinkID{f.PaperLink[1]})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Skip("tight-cap stealthy attack infeasible")
	}
	for i, v := range res.M {
		if v > 900+1e-6 {
			t.Errorf("m[%d] = %g exceeds 900 cap", i, v)
		}
	}
}
