package core

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestCapShadowPricesPredictDamageGain(t *testing.T) {
	// The shadow price of a binding cap predicts the damage gained from
	// loosening it: raise the global cap slightly and compare the damage
	// increase with Σ prices · Δcap.
	f, sc := fig1Scenario(t, 42)
	victim := []graph.LinkID{f.PaperLink[1]}
	base, err := ChosenVictim(sc, victim)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Feasible {
		t.Fatal("infeasible")
	}
	if len(base.CapShadowPrices) == 0 {
		t.Fatal("no binding caps reported; the Fig1 optimum saturates several paths")
	}
	// Every priced path must actually sit at the cap.
	for pi, price := range base.CapShadowPrices {
		if price <= 0 {
			t.Errorf("path %d: non-positive price %g", pi, price)
		}
		if math.Abs(base.M[pi]-DefaultPathCap) > 1e-6 {
			t.Errorf("path %d priced %g but m = %g below cap", pi, price, base.M[pi])
		}
	}
	var priceSum float64
	for _, p := range base.CapShadowPrices {
		priceSum += p
	}
	const delta = 1.0 // +1 ms on every path's cap
	sc2 := &Scenario{
		Sys:        sc.Sys,
		Thresholds: sc.Thresholds,
		Attackers:  sc.Attackers,
		TrueX:      sc.TrueX,
		PathCap:    DefaultPathCap + delta,
	}
	loosened, err := ChosenVictim(sc2, victim)
	if err != nil {
		t.Fatal(err)
	}
	if !loosened.Feasible {
		t.Fatal("loosened infeasible")
	}
	gain := loosened.Damage - base.Damage
	predicted := priceSum * delta
	// LP sensitivity is exact for small perturbations within the basis.
	if math.Abs(gain-predicted) > 0.05*predicted+1e-6 {
		t.Errorf("damage gain %.3f vs shadow-price prediction %.3f", gain, predicted)
	}
}

func TestCapShadowPricesAbsentWhenUnbounded(t *testing.T) {
	f, sc := fig1Scenario(t, 7)
	sc.PathCap = -1 // unbounded
	res, err := ChosenVictim(sc, []graph.LinkID{f.PaperLink[1]})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible && res.CapShadowPrices != nil {
		t.Errorf("shadow prices %v reported without caps", res.CapShadowPrices)
	}
}
