package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/la"
)

// ChosenVictim runs the chosen-victim strategy (Eq. 4): given the victim
// link set L_s, maximize damage subject to every attacker link
// estimating normal and every victim link estimating abnormal. Returns a
// Result whose Feasible field answers the paper's feasibility question;
// an error indicates a malformed scenario, not an infeasible attack.
func ChosenVictim(sc *Scenario, victims []graph.LinkID) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if len(victims) == 0 {
		return nil, fmt.Errorf("core: ChosenVictim with empty victim set: %w", ErrBadScenario)
	}
	victimSet := make(map[graph.LinkID]bool, len(victims))
	for _, l := range victims {
		if _, err := sc.Sys.Graph().Link(l); err != nil {
			return nil, fmt.Errorf("core: victim %d: %v: %w", l, err, ErrBadScenario)
		}
		if victimSet[l] {
			return nil, fmt.Errorf("core: duplicate victim %d: %w", l, ErrBadScenario)
		}
		// Constraint (7): L_m ∩ L_s = ∅.
		if sc.attackerLinks[l] {
			return nil, fmt.Errorf("core: victim %d is an attacker link (violates Eq. 7): %w", l, ErrBadScenario)
		}
		victimSet[l] = true
	}
	sl, su := sc.unboundedBounds()
	eps := sc.margin()
	// ConfineOthers is a plain-mode refinement: in stealthy mode a
	// finite bound would pull the link into the consistency support
	// L_m ∪ L_s and change Theorem 3's semantics, so it is skipped.
	if sc.ConfineOthers && !sc.Stealthy {
		for l := range su {
			su[l] = sc.Thresholds.Upper // third links stay ≤ uncertain
		}
	}
	for l := range sc.attackerLinks {
		su[l] = sc.Thresholds.Lower - eps // S(l) = normal (Eq. 5)
	}
	for l := range victimSet {
		sl[l] = sc.Thresholds.Upper + eps // S(l) = abnormal (Eq. 6)
		su[l] = math.Inf(1)
	}
	res, err := sc.SolveWithBounds(sl, su)
	if err != nil {
		return nil, err
	}
	res.Victims = append([]graph.LinkID(nil), victims...)
	return res, nil
}

// MaxDamageOptions steer the maximum-damage victim search.
type MaxDamageOptions struct {
	// MaxVictims caps the greedy victim-set growth. 0 means 3.
	MaxVictims int
	// Candidates restricts the victim candidate pool; nil means every
	// non-attacker link.
	Candidates []graph.LinkID
	// FirstFeasible stops the single-victim search at the first
	// feasible candidate (candidates are tried most-raisable first, so
	// the hit approximates the optimum). Success-probability sweeps use
	// this to avoid |L| LP solves per trial.
	FirstFeasible bool
	// MaxCandidates bounds how many candidates are tried (0: all).
	MaxCandidates int
}

func (o MaxDamageOptions) maxVictims() int {
	if o.MaxVictims <= 0 {
		return 3
	}
	return o.MaxVictims
}

// MaxDamage runs the maximum-damage strategy (Eq. 8): search the victim
// set L_s ⊂ L \ L_m maximizing the damage. The search is greedy — best
// single victim first, then extensions while the damage grows — matching
// the paper's aim of "finding the best victim set" without an
// exponential sweep. Infeasibility (no victim works at all) comes back
// as Feasible == false.
func MaxDamage(sc *Scenario, opts MaxDamageOptions) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	cands, err := sc.victimCandidates(opts.Candidates, sc.Thresholds.Upper)
	if err != nil {
		return nil, err
	}
	// Most-raisable first: the best victim is usually the one the
	// attackers dominate most, and FirstFeasible relies on this order.
	if !sc.Stealthy {
		raise := sc.maxRaise()
		sort.SliceStable(cands, func(a, b int) bool {
			return raise[cands[a]] > raise[cands[b]]
		})
	}
	if opts.MaxCandidates > 0 && len(cands) > opts.MaxCandidates {
		cands = cands[:opts.MaxCandidates]
	}
	best := &Result{}
	var bestVictims []graph.LinkID
	// Stage 1: best single victim.
	for _, l := range cands {
		res, err := ChosenVictim(sc, []graph.LinkID{l})
		if err != nil {
			return nil, err
		}
		if res.Feasible && res.Damage > best.Damage {
			best = res
			bestVictims = []graph.LinkID{l}
			if opts.FirstFeasible {
				break
			}
		}
	}
	if !best.Feasible {
		return best, nil
	}
	if opts.FirstFeasible {
		best.Victims = bestVictims
		return best, nil
	}
	// Stage 2: greedy growth while damage strictly improves.
	for len(bestVictims) < opts.maxVictims() {
		improved := false
		for _, l := range cands {
			if containsLink(bestVictims, l) {
				continue
			}
			trial := append(append([]graph.LinkID(nil), bestVictims...), l)
			res, err := ChosenVictim(sc, trial)
			if err != nil {
				return nil, err
			}
			if res.Feasible && res.Damage > best.Damage+1e-9 {
				best = res
				bestVictims = trial
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	best.Victims = bestVictims
	return best, nil
}

// ObfuscationOptions steer the obfuscation strategy.
type ObfuscationOptions struct {
	// MinVictims is the success bar: at least this many victim links
	// must land in the uncertain band. The paper's Fig. 8 experiment
	// uses 5. 0 means 1.
	MinVictims int
	// Candidates restricts the victim candidate pool; nil means every
	// non-attacker link the attackers can influence.
	Candidates []graph.LinkID
}

func (o ObfuscationOptions) minVictims() int {
	if o.MinVictims <= 0 {
		return 1
	}
	return o.MinVictims
}

// Obfuscate runs the obfuscation strategy (Eq. 9): find a victim set
// L_s such that every link in L_s ∪ L_m estimates uncertain, maximizing
// damage. The victim set starts from every influenceable link and
// shrinks greedily (dropping the least-raisable link) until the LP is
// feasible or the set falls below MinVictims.
func Obfuscate(sc *Scenario, opts ObfuscationOptions) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	// Candidate victims must be raisable to at least the lower band
	// edge b_l (otherwise they can never be uncertain: x* < b_l in any
	// attack-worthy scenario).
	cands, err := sc.victimCandidates(opts.Candidates, sc.Thresholds.Lower)
	if err != nil {
		return nil, err
	}
	raise := sc.maxRaise()
	// Shrink order: drop the link with the smallest raise margin first.
	sort.SliceStable(cands, func(a, b int) bool {
		ma := raise[cands[a]] - (sc.Thresholds.Lower - sc.TrueX[cands[a]])
		mb := raise[cands[b]] - (sc.Thresholds.Lower - sc.TrueX[cands[b]])
		return ma > mb
	})
	eps := sc.margin()
	solvePrefix := func(n int) (*Result, error) {
		sl, su := sc.unboundedBounds()
		if sc.ConfineOthers && !sc.Stealthy {
			for l := range su {
				su[l] = sc.Thresholds.Upper
			}
		}
		for l := range sc.attackerLinks {
			sl[l] = sc.Thresholds.Lower + eps // attacker links uncertain (Eq. 10)
			su[l] = sc.Thresholds.Upper - eps
		}
		for _, l := range cands[:n] {
			sl[l] = sc.Thresholds.Lower + eps
			su[l] = sc.Thresholds.Upper - eps
		}
		return sc.SolveWithBounds(sl, su)
	}
	// Feasibility is monotone in the prefix length (each extra victim
	// only adds constraints), so binary-search the largest feasible
	// prefix instead of shrinking one link at a time.
	minV := opts.minVictims()
	if len(cands) < minV {
		return &Result{}, nil
	}
	res, err := solvePrefix(len(cands))
	if err != nil {
		return nil, err
	}
	if res.Feasible {
		res.Victims = append([]graph.LinkID(nil), cands...)
		return res, nil
	}
	resMin, err := solvePrefix(minV)
	if err != nil {
		return nil, err
	}
	if !resMin.Feasible {
		return &Result{}, nil
	}
	// Invariant: prefix lo feasible (result bestRes), prefix hi infeasible.
	lo, hi := minV, len(cands)
	bestRes, bestLen := resMin, minV
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		r, err := solvePrefix(mid)
		if err != nil {
			return nil, err
		}
		if r.Feasible {
			lo, bestRes, bestLen = mid, r, mid
		} else {
			hi = mid
		}
	}
	bestRes.Victims = append([]graph.LinkID(nil), cands[:bestLen]...)
	return bestRes, nil
}

// victimCandidates returns non-attacker links whose estimate the
// attackers can raise past `target` (using the maxRaise pruning bound),
// or validates a caller-supplied pool.
func (sc *Scenario) victimCandidates(supplied []graph.LinkID, target float64) ([]graph.LinkID, error) {
	if supplied != nil {
		out := make([]graph.LinkID, 0, len(supplied))
		for _, l := range supplied {
			if _, err := sc.Sys.Graph().Link(l); err != nil {
				return nil, fmt.Errorf("core: candidate %d: %v: %w", l, err, ErrBadScenario)
			}
			if sc.attackerLinks[l] {
				continue
			}
			out = append(out, l)
		}
		return out, nil
	}
	// The maxRaise pruning bound is derived from the plain formulation
	// (x̂ shift = T·m); it does not bound the stealthy one, so stealthy
	// searches consider every non-attacker link.
	var raise la.Vector
	if !sc.Stealthy {
		raise = sc.maxRaise()
	}
	var out []graph.LinkID
	for l := 0; l < sc.Sys.NumLinks(); l++ {
		lid := graph.LinkID(l)
		if sc.attackerLinks[lid] {
			continue
		}
		if raise == nil || sc.TrueX[l]+raise[l] > target {
			out = append(out, lid)
		}
	}
	return out, nil
}

// unboundedBounds returns (−Inf, +Inf) bound vectors sized to the link
// count.
func (sc *Scenario) unboundedBounds() (la.Vector, la.Vector) {
	n := sc.Sys.NumLinks()
	sl := make(la.Vector, n)
	su := make(la.Vector, n)
	for i := 0; i < n; i++ {
		sl[i] = math.Inf(-1)
		su[i] = math.Inf(1)
	}
	return sl, su
}

func containsLink(list []graph.LinkID, l graph.LinkID) bool {
	for _, x := range list {
		if x == l {
			return true
		}
	}
	return false
}
