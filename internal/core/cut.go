package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tomo"
)

// PerfectCut reports whether the attacker set perfectly cuts the victim
// links from the measurement paths (Section IV-A): every path containing
// a victim link also carries an attacker. Theorem 1 guarantees
// feasibility, and Theorem 3 guarantees undetectability, under a perfect
// cut.
func PerfectCut(sys *tomo.System, attackers []graph.NodeID, victims []graph.LinkID) (bool, error) {
	stats, err := cutStats(sys, attackers, victims)
	if err != nil {
		return false, err
	}
	return stats.victimPaths == stats.coveredPaths, nil
}

// PresenceRatio returns the attack presence ratio of Section V-C1: the
// fraction of measurement paths containing at least one victim link that
// also carry at least one attacker. A ratio of 1 is exactly a perfect
// cut. Paths containing no victim link are ignored; if no path contains
// a victim link the ratio is reported as 1 (the cut is vacuously
// perfect, though such victims are also invisible to tomography).
func PresenceRatio(sys *tomo.System, attackers []graph.NodeID, victims []graph.LinkID) (float64, error) {
	stats, err := cutStats(sys, attackers, victims)
	if err != nil {
		return 0, err
	}
	if stats.victimPaths == 0 {
		return 1, nil
	}
	return float64(stats.coveredPaths) / float64(stats.victimPaths), nil
}

type cutCounts struct {
	victimPaths  int // paths containing ≥ 1 victim link
	coveredPaths int // of those, paths also carrying ≥ 1 attacker
}

func cutStats(sys *tomo.System, attackers []graph.NodeID, victims []graph.LinkID) (cutCounts, error) {
	if sys == nil {
		return cutCounts{}, fmt.Errorf("core: nil system: %w", ErrBadScenario)
	}
	g := sys.Graph()
	attackerSet := make(map[graph.NodeID]bool, len(attackers))
	for _, v := range attackers {
		if _, err := g.NodeName(v); err != nil {
			return cutCounts{}, fmt.Errorf("core: attacker %d: %v: %w", v, err, ErrBadScenario)
		}
		attackerSet[v] = true
	}
	victimSet := make(map[graph.LinkID]bool, len(victims))
	for _, l := range victims {
		if _, err := g.Link(l); err != nil {
			return cutCounts{}, fmt.Errorf("core: victim %d: %v: %w", l, err, ErrBadScenario)
		}
		victimSet[l] = true
	}
	var stats cutCounts
	for _, p := range sys.Paths() {
		if !p.HasAnyLink(victimSet) {
			continue
		}
		stats.victimPaths++
		if p.HasAnyNode(attackerSet) {
			stats.coveredPaths++
		}
	}
	return stats, nil
}
