package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/tomo"
)

// stealthyFig1Scenario clones a Fig. 1 scenario in stealthy mode.
func stealthyFig1Scenario(t *testing.T, seed int64) (*Scenario, *la.Vector) {
	t.Helper()
	_, sc := fig1Scenario(t, seed)
	sc.Stealthy = true
	// Re-validate: fig1Scenario already validated; the flag does not
	// invalidate cached state.
	return sc, &sc.TrueX
}

// residualNorm computes ‖R·x̂ − y'‖₁ for an attack result.
func residualNorm(t *testing.T, sc *Scenario, res *Result) float64 {
	t.Helper()
	r, err := sc.Sys.Residual(res.XHat, res.YObserved)
	if err != nil {
		t.Fatal(err)
	}
	return r.Norm1()
}

func TestStealthyPerfectCutFeasibleAndConsistent(t *testing.T) {
	// Theorem 1 + Theorem 3: stealthy chosen-victim on the perfectly cut
	// link 1 must be feasible and leave a zero residual.
	for seed := int64(0); seed < 8; seed++ {
		f, sc := fig1Scenario(t, seed)
		sc.Stealthy = true
		res, err := ChosenVictim(sc, []graph.LinkID{f.PaperLink[1]})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Feasible {
			t.Fatalf("seed %d: stealthy perfect-cut attack infeasible", seed)
		}
		if rn := residualNorm(t, sc, res); rn > 1e-6 {
			t.Errorf("seed %d: stealthy residual = %g, want ≈ 0", seed, rn)
		}
		assertScapegoat(t, sc, res, []graph.LinkID{f.PaperLink[1]})
	}
}

func TestStealthyImperfectCutInfeasible(t *testing.T) {
	// Theorem 3's converse: no consistent manipulation can scapegoat
	// link 10, because the attacker-free path M3–D–M2 pins its metric.
	for seed := int64(0); seed < 8; seed++ {
		f, sc := fig1Scenario(t, seed)
		sc.Stealthy = true
		res, err := ChosenVictim(sc, []graph.LinkID{f.PaperLink[10]})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Feasible {
			t.Errorf("seed %d: stealthy attack on imperfectly cut link 10 feasible — contradicts Theorem 3", seed)
		}
	}
}

func TestPlainPerfectCutUsuallyDetectable(t *testing.T) {
	// The damage-maximizing plain formulation ignores consistency, so
	// even a perfect-cut attack leaves a large residual — this is the
	// modeling nuance that makes Stealthy necessary.
	f, sc := fig1Scenario(t, 42)
	res, err := ChosenVictim(sc, []graph.LinkID{f.PaperLink[1]})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("plain perfect-cut attack infeasible")
	}
	if rn := residualNorm(t, sc, res); rn < 200 {
		t.Errorf("plain max-damage residual = %g; expected large (detectable)", rn)
	}
}

func TestStealthyDamageNotAboveplain(t *testing.T) {
	// Stealth adds constraints, so its optimum cannot beat the plain one.
	f, sc := fig1Scenario(t, 7)
	plain, err := ChosenVictim(sc, []graph.LinkID{f.PaperLink[1]})
	if err != nil {
		t.Fatal(err)
	}
	scS := &Scenario{
		Sys:        sc.Sys,
		Thresholds: sc.Thresholds,
		Attackers:  sc.Attackers,
		TrueX:      sc.TrueX,
		Stealthy:   true,
	}
	stealth, err := ChosenVictim(scS, []graph.LinkID{f.PaperLink[1]})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Feasible || !stealth.Feasible {
		t.Fatal("both modes should be feasible on link 1")
	}
	if stealth.Damage > plain.Damage+1e-6 {
		t.Errorf("stealthy damage %.1f exceeds plain %.1f", stealth.Damage, plain.Damage)
	}
}

func TestStealthyMaxDamage(t *testing.T) {
	// Max-damage in stealthy mode must find a perfectly-cut victim
	// (link 1 is available) and stay consistent.
	sc, _ := stealthyFig1Scenario(t, 11)
	res, err := MaxDamage(sc, MaxDamageOptions{MaxVictims: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("stealthy max-damage infeasible")
	}
	if rn := residualNorm(t, sc, res); rn > 1e-6 {
		t.Errorf("stealthy max-damage residual = %g", rn)
	}
	for _, l := range res.Victims {
		if res.States[l] != tomo.Abnormal {
			t.Errorf("victim %d not abnormal", l)
		}
	}
}

func TestStealthyObfuscate(t *testing.T) {
	sc, _ := stealthyFig1Scenario(t, 13)
	res, err := Obfuscate(sc, ObfuscationOptions{MinVictims: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Skip("stealthy obfuscation infeasible on this draw — acceptable, needs perfect-cuttable band targets")
	}
	if rn := residualNorm(t, sc, res); rn > 1e-6 {
		t.Errorf("stealthy obfuscation residual = %g", rn)
	}
}

func TestStealthyNoBoundsZeroAttack(t *testing.T) {
	sc, _ := stealthyFig1Scenario(t, 3)
	sl, su := sc.unboundedBounds()
	res, err := sc.SolveWithBounds(sl, su)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("zero attack reported infeasible")
	}
	if res.Damage != 0 {
		t.Errorf("damage = %g, want 0 (no bounded links, only consistent choice is no-op)", res.Damage)
	}
}
