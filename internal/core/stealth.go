package core

import (
	"fmt"
	"math"

	"repro/internal/la"
	"repro/internal/lp"
)

// solveStealthy solves the consistent attack of Theorem 1's proof: pick
// an estimate shift Δx̂ supported on L_m ∪ L_s and manipulate every path
// by exactly the model-consistent amount m = R·Δx̂ (Eq. 15). Because
// y' = R·(x* + Δx̂), the tomography estimate is x̂ = x* + Δx̂ and the
// Eq. 23 residual is zero — the attack is invisible to the consistency
// detector.
//
// The support restriction follows the proof of Theorem 1 ("if link
// l_j ∉ L_m ∪ L_s, Δx̂_j = 0 as the attackers do not manipulate the
// metric of link l_j") and is what makes Theorem 3's converse hold: an
// uncontrolled path forces Σ_{l ∈ path} Δx̂_l = 0, and with support
// restricted to bounded links a victim on such a path cannot move, so
// the program goes infeasible exactly when the cut is imperfect.
// Operationally, support = links with at least one finite bound, which
// is L_m ∪ L_s in every strategy built on SolveWithBounds.
//
// The LP runs over the supported Δx̂ split into non-negative parts
// d⁺ − d⁻:
//
//	maximize  Σ_{i controlled} m_i,  m_i = Σ_{l ∈ path i ∩ supp} (d⁺_l − d⁻_l)
//	s.t.      m_i = 0          for attacker-free paths (Constraint 1)
//	          0 ≤ m_i ≤ cap    for controlled paths
//	          s_l ⪯ x* + Δx̂ ⪯ s_u  on the support
//	          x* + Δx̂ ≥ 0         on the support (estimates stay physical)
func (sc *Scenario) solveStealthy(sl, su la.Vector) (*Result, error) {
	nLinks := sc.Sys.NumLinks()
	nPaths := sc.Sys.NumPaths()

	// Support: links with any finite bound.
	suppIdx := make([]int, 0, nLinks)
	suppPos := make(map[int]int, nLinks) // link → variable block index
	for l := 0; l < nLinks; l++ {
		if !math.IsInf(sl[l], -1) || !math.IsInf(su[l], 1) {
			suppPos[l] = len(suppIdx)
			suppIdx = append(suppIdx, l)
		}
	}
	ns := len(suppIdx)
	if ns == 0 {
		// Nothing to manipulate consistently: the zero attack is the
		// only consistent one. Report it as feasible-but-zero.
		return sc.zeroResult()
	}
	// Variables: d⁺ in [0, ns), d⁻ in [ns, 2ns).
	prob := lp.NewProblem(2 * ns)
	obj := make([]float64, 2*ns)
	for _, pi := range sc.controlled {
		for _, l := range sc.Sys.Paths()[pi].Links {
			if k, ok := suppPos[int(l)]; ok {
				obj[k]++
				obj[ns+k]--
			}
		}
	}
	if err := prob.SetObjective(obj); err != nil {
		return nil, err
	}

	capVal := sc.pathCap()
	row := make([]float64, 2*ns)
	zeroRow := func() {
		for j := range row {
			row[j] = 0
		}
	}
	for i := 0; i < nPaths; i++ {
		zeroRow()
		touches := false
		for _, l := range sc.Sys.Paths()[i].Links {
			if k, ok := suppPos[int(l)]; ok {
				row[k] = 1
				row[ns+k] = -1
				touches = true
			}
		}
		if !touches {
			continue // m_i ≡ 0, nothing to constrain
		}
		if sc.controlledSet[i] {
			if err := prob.AddConstraint(row, lp.GE, 0); err != nil {
				return nil, err
			}
			if !math.IsInf(capVal, 1) {
				if err := prob.AddConstraint(row, lp.LE, capVal); err != nil {
					return nil, err
				}
			}
		} else {
			if err := prob.AddConstraint(row, lp.EQ, 0); err != nil {
				return nil, err
			}
		}
	}

	// Link estimate bounds on the support, with a physicality floor.
	for _, l := range suppIdx {
		lo, hi := sl[l], su[l]
		if lo < 0 || math.IsInf(lo, -1) {
			lo = 0 // x̂ ≥ 0: manipulated estimates stay physical
		}
		zeroRow()
		k := suppPos[l]
		row[k] = 1
		row[ns+k] = -1
		if !math.IsInf(hi, 1) {
			if err := prob.AddConstraint(row, lp.LE, hi-sc.TrueX[l]); err != nil {
				return nil, err
			}
		}
		if err := prob.AddConstraint(row, lp.GE, lo-sc.TrueX[l]); err != nil {
			return nil, err
		}
	}

	sol, err := lp.Solve(prob)
	if err != nil {
		return nil, fmt.Errorf("core: stealthy LP solve: %w", err)
	}
	res := &Result{LPStatus: sol.Status}
	if sol.Status != lp.Optimal {
		return res, nil
	}
	res.Feasible = true
	delta := make(la.Vector, nLinks)
	for k, l := range suppIdx {
		delta[l] = sol.X[k] - sol.X[ns+k]
	}
	m := make(la.Vector, nPaths)
	for i, p := range sc.Sys.Paths() {
		var s float64
		for _, l := range p.Links {
			s += delta[int(l)]
		}
		// Clamp solver noise: uncontrolled paths are exactly zero by
		// the equality rows, controlled ones non-negative.
		if s < 0 && s > -1e-7 {
			s = 0
		}
		m[i] = s
	}
	res.M = m
	res.Damage = m.Norm1()
	yObs, err := sc.measuredY.Add(m)
	if err != nil {
		return nil, err
	}
	res.YObserved = yObs
	xhat, err := sc.Sys.Estimate(yObs)
	if err != nil {
		return nil, err
	}
	res.XHat = xhat
	res.States = sc.Thresholds.ClassifyAll(xhat)
	res.AvgPathMetric = yObs.Mean()
	return res, nil
}

// zeroResult reports the do-nothing attack: feasible, zero damage,
// clean measurements.
func (sc *Scenario) zeroResult() (*Result, error) {
	m := make(la.Vector, sc.Sys.NumPaths())
	yObs := sc.measuredY.Clone()
	xhat, err := sc.Sys.Estimate(yObs)
	if err != nil {
		return nil, err
	}
	return &Result{
		Feasible:      true,
		LPStatus:      lp.Optimal,
		M:             m,
		YObserved:     yObs,
		XHat:          xhat,
		States:        sc.Thresholds.ClassifyAll(xhat),
		AvgPathMetric: yObs.Mean(),
	}, nil
}
