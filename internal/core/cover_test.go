package core

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/tomo"
	"repro/internal/topo"
)

func TestFindPerfectCutAttackersLink1(t *testing.T) {
	// Link 1 (M1–A) is perfectly cuttable: the paper's {B, C} works, and
	// smaller sets may too. Whatever is found must actually cut.
	_, sc := fig1Scenario(t, 1)
	f := topo.Fig1()
	set, err := FindPerfectCutAttackers(sc.Sys, []graph.LinkID{f.PaperLink[1]}, 3)
	if err != nil {
		t.Fatalf("FindPerfectCutAttackers: %v", err)
	}
	if set == nil {
		t.Fatal("no attacker set found for link 1; {B, C} is a witness")
	}
	if len(set) > 3 {
		t.Fatalf("set size %d exceeds budget", len(set))
	}
	pc, err := PerfectCut(sc.Sys, set, []graph.LinkID{f.PaperLink[1]})
	if err != nil {
		t.Fatal(err)
	}
	if !pc {
		t.Errorf("returned set %v does not perfectly cut link 1", set)
	}
	// Eq. 7: no attacker may be an endpoint of the victim.
	for _, v := range set {
		if v == f.M1 || v == f.A {
			t.Errorf("attacker %d is a victim endpoint", v)
		}
	}
}

func TestFindPerfectCutAttackersAllLinks(t *testing.T) {
	// Every Fig. 1 link should be perfectly cuttable by SOME set of ≤ 4
	// non-endpoint nodes, or the search must consistently say no; verify
	// returned sets always cut and respect Eq. 7.
	_, sc := fig1Scenario(t, 1)
	f := topo.Fig1()
	found := 0
	for num := 1; num <= 10; num++ {
		victim := f.PaperLink[num]
		set, err := FindPerfectCutAttackers(sc.Sys, []graph.LinkID{victim}, 4)
		if err != nil {
			t.Fatal(err)
		}
		if set == nil {
			continue
		}
		found++
		pc, err := PerfectCut(sc.Sys, set, []graph.LinkID{victim})
		if err != nil {
			t.Fatal(err)
		}
		if !pc {
			t.Errorf("link %d: returned set %v does not cut", num, set)
		}
		link, _ := f.G.Link(victim)
		for _, v := range set {
			if link.Has(v) {
				t.Errorf("link %d: attacker %d is an endpoint", num, v)
			}
		}
	}
	if found == 0 {
		t.Error("no link perfectly cuttable on Fig. 1 — link 1 should be")
	}
}

func TestFindPerfectCutAttackersFoundSetIsUsable(t *testing.T) {
	// End-to-end: the found set must enable a feasible, undetectable
	// stealthy attack (Theorems 1 + 3 composed).
	_, scBase := fig1Scenario(t, 2)
	f := topo.Fig1()
	victim := f.PaperLink[1]
	set, err := FindPerfectCutAttackers(scBase.Sys, []graph.LinkID{victim}, 3)
	if err != nil || set == nil {
		t.Fatalf("set=%v err=%v", set, err)
	}
	sc := &Scenario{
		Sys:        scBase.Sys,
		Thresholds: scBase.Thresholds,
		Attackers:  set,
		TrueX:      scBase.TrueX,
		Stealthy:   true,
	}
	res, err := ChosenVictim(sc, []graph.LinkID{victim})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("stealthy attack with found perfect-cut set infeasible")
	}
	if rn := residualNorm(t, sc, res); rn > 1e-6 {
		t.Errorf("residual %g, want 0", rn)
	}
}

func TestFindPerfectCutAttackersValidation(t *testing.T) {
	_, sc := fig1Scenario(t, 1)
	if _, err := FindPerfectCutAttackers(nil, nil, 1); !errors.Is(err, ErrBadScenario) {
		t.Errorf("nil system: err = %v", err)
	}
	if _, err := FindPerfectCutAttackers(sc.Sys, []graph.LinkID{99}, 1); !errors.Is(err, ErrBadScenario) {
		t.Errorf("bad victim: err = %v", err)
	}
	if _, err := FindPerfectCutAttackers(sc.Sys, nil, 0); !errors.Is(err, ErrBadScenario) {
		t.Errorf("zero budget: err = %v", err)
	}
}

func TestFindPerfectCutAttackersVacuous(t *testing.T) {
	// A system whose single path misses the victim entirely: vacuously
	// cut, nothing to cover → nil, nil.
	f := topo.Fig1()
	p := graph.Path{
		Nodes: []graph.NodeID{f.M3, f.D, f.M2},
		Links: []graph.LinkID{f.PaperLink[9], f.PaperLink[10]},
	}
	sys, err := tomo.NewSystem(f.G, []graph.Path{p})
	if err != nil {
		t.Fatal(err)
	}
	set, err := FindPerfectCutAttackers(sys, []graph.LinkID{f.PaperLink[1]}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if set != nil {
		t.Errorf("vacuous case returned %v", set)
	}
}

func TestFindPerfectCutAttackersUncoverable(t *testing.T) {
	// Victim = link 9 (M3–D) with the 2-hop path M3–D–M2: the only
	// usable interior node is M2 (endpoints M3, D excluded)… M2 is on
	// the path, so {M2} covers it. Use victim 10 (D–M2) instead: usable
	// nodes are M3 only. Either way a set exists; to force failure,
	// use a single-link path whose both nodes are endpoints.
	g := graph.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	l, err := g.AddLink(a, b)
	if err != nil {
		t.Fatal(err)
	}
	p := graph.Path{Nodes: []graph.NodeID{a, b}, Links: []graph.LinkID{l}}
	sys, err := tomo.NewSystem(g, []graph.Path{p})
	if err != nil {
		t.Fatal(err)
	}
	set, err := FindPerfectCutAttackers(sys, []graph.LinkID{l}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if set != nil {
		t.Errorf("uncoverable case returned %v", set)
	}
}

func TestFindPerfectCutAttackersGreedyBranch(t *testing.T) {
	// Four disjoint monitor→P_i→X detours share the victim link X–Y:
	// the minimal hitting set has size 4, so the exact ≤3 search fails
	// and the greedy cover must find a 4-node set.
	g := graph.New()
	x, y := g.AddNode("X"), g.AddNode("Y")
	vlink, err := g.AddLink(x, y)
	if err != nil {
		t.Fatal(err)
	}
	var paths []graph.Path
	for i := 0; i < 4; i++ {
		m := g.AddNode(string(rune('m'+i)) + "on")
		p := g.AddNode(string(rune('p'+i)) + "ath")
		l1, err := g.AddLink(m, p)
		if err != nil {
			t.Fatal(err)
		}
		l2, err := g.AddLink(p, x)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, graph.Path{
			Nodes: []graph.NodeID{m, p, x, y},
			Links: []graph.LinkID{l1, l2, vlink},
		})
	}
	sys, err := tomo.NewSystem(g, paths)
	if err != nil {
		t.Fatal(err)
	}
	// No ≤3-node cover exists.
	small, err := FindPerfectCutAttackers(sys, []graph.LinkID{vlink}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if small != nil {
		t.Fatalf("size-≤3 cover %v found; paths are 4 disjoint pairs", small)
	}
	// Greedy finds a 4-node cover.
	set, err := FindPerfectCutAttackers(sys, []graph.LinkID{vlink}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 4 {
		t.Fatalf("greedy cover = %v, want 4 nodes", set)
	}
	pc, err := PerfectCut(sys, set, []graph.LinkID{vlink})
	if err != nil {
		t.Fatal(err)
	}
	if !pc {
		t.Errorf("greedy set %v does not cut", set)
	}
	// Budget 3 via greedy is also impossible once past the exact stage:
	// maxSize 4 minus one node leaves a path uncovered — verify the
	// returned set never contains X or Y.
	for _, v := range set {
		if v == x || v == y {
			t.Errorf("victim endpoint %d in attacker set", v)
		}
	}
}

func TestScenarioAccessorErrorPaths(t *testing.T) {
	bad := &Scenario{} // invalid: nil system
	if _, err := bad.CleanMeasurements(); err == nil {
		t.Error("CleanMeasurements on invalid scenario succeeded")
	}
	if _, err := bad.AttackerLinks(); err == nil {
		t.Error("AttackerLinks on invalid scenario succeeded")
	}
	if _, err := bad.ControlledPaths(); err == nil {
		t.Error("ControlledPaths on invalid scenario succeeded")
	}
	if err := bad.CheckConstraint1(nil); err == nil {
		t.Error("CheckConstraint1 on invalid scenario succeeded")
	}
	// Explicit margin round-trips.
	sc := &Scenario{Margin: 0.5}
	if sc.margin() != 0.5 {
		t.Errorf("margin = %g", sc.margin())
	}
}
