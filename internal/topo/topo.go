// Package topo provides the concrete network topologies the paper's
// evaluation runs on: the seven-node example of Fig. 1 (reconstructed
// from the constraints in the text, see DESIGN.md §4), a synthetic
// Rocketfuel-AS1221-like ISP topology (substitution documented in
// DESIGN.md §5), and the wireless random-geometric scenario of
// Section V-C.
package topo

import (
	"fmt"
	"math"
	"math/rand"
	"os"

	"repro/internal/graph"
)

// Fig1Topology is the paper's running example: monitors M1–M3, internal
// nodes A–D, links numbered 1–10 as in the paper's figure.
type Fig1Topology struct {
	G *graph.Graph
	// Named node handles.
	M1, M2, M3, A, B, C, D graph.NodeID
	// Monitors is {M1, M2, M3}.
	Monitors []graph.NodeID
	// PaperLink maps the paper's 1-based link numbers (index 1..10) to
	// graph link IDs. Index 0 is unused.
	PaperLink [11]graph.LinkID
	// Attackers is the paper's malicious pair {B, C}.
	Attackers []graph.NodeID
}

// Fig1 builds the reconstructed Fig. 1 topology:
//
//	1: M1–A   2: A–B    3: B–M1  4: A–C   5: B–D
//	6: C–M1   7: C–D    8: M3–C  9: M3–D  10: D–M2
//
// The assignment satisfies every structural fact the paper states:
// links 2–8 all touch B or C; node B's incident links are exactly
// {2, 3, 5}; every path through link 1 carries B or C (A's other links
// lead only to B and C); the links 8,7,5,3 form a valid monitor-to-
// monitor path M3→C→D→B→M1 (the paper's cooperative example); and the
// attacker-free route M3–D–M2 is the paper's path 17 (links 9, 10).
// Every non-monitor node has degree ≥ 3, which the 23 selected paths
// need for full column rank (a degree-2 internal node makes its two
// links inseparable on any monitor-to-monitor path).
func Fig1() *Fig1Topology {
	g := graph.New()
	t := &Fig1Topology{G: g}
	t.M1 = g.AddNode("M1")
	t.M2 = g.AddNode("M2")
	t.M3 = g.AddNode("M3")
	t.A = g.AddNode("A")
	t.B = g.AddNode("B")
	t.C = g.AddNode("C")
	t.D = g.AddNode("D")
	t.Monitors = []graph.NodeID{t.M1, t.M2, t.M3}
	t.Attackers = []graph.NodeID{t.B, t.C}

	pairs := [][2]graph.NodeID{
		1:  {t.M1, t.A},
		2:  {t.A, t.B},
		3:  {t.B, t.M1},
		4:  {t.A, t.C},
		5:  {t.B, t.D},
		6:  {t.C, t.M1},
		7:  {t.C, t.D},
		8:  {t.M3, t.C},
		9:  {t.M3, t.D},
		10: {t.D, t.M2},
	}
	for num := 1; num <= 10; num++ {
		id, err := g.AddLink(pairs[num][0], pairs[num][1])
		if err != nil {
			// The table above is a fixed valid simple graph; failure is
			// a programming error, not a runtime condition.
			panic(fmt.Sprintf("topo: Fig1 link %d: %v", num, err))
		}
		t.PaperLink[num] = id
	}
	return t
}

// ISPNodes and ISPAttach parameterize the synthetic AS1221-like map:
// Rocketfuel's AS1221 (Telstra) backbone has ~104 routers and ~300
// links; BarabasiAlbert(104, 3) matches both scale and the heavy-tailed
// degree mix.
const (
	ISPNodes  = 104
	ISPAttach = 3
)

// ISP returns the synthetic Rocketfuel-AS1221-like wireline topology.
// Deterministic for a given seed.
func ISP(seed int64) (*graph.Graph, error) {
	g, err := graph.BarabasiAlbert(ISPNodes, ISPAttach, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, fmt.Errorf("topo: ISP: %w", err)
	}
	return g, nil
}

// Wireless parameters from Section V-C: 100 nodes at density λ=5 on
// [0, √(100/λ)]², radius chosen for 5 expected neighbors.
const (
	WirelessNodes   = 100
	WirelessDensity = 5.0
	WirelessDegree  = 5.0
)

// Wireless returns the paper's wireless scenario: a random geometric
// graph with the Section V-C parameters. If the draw is disconnected the
// giant component is used (the paper's tomography needs a connected
// measurement substrate); positions are returned for the surviving
// nodes. Deterministic for a given seed.
func Wireless(seed int64) (*graph.Graph, []graph.Point, error) {
	rng := rand.New(rand.NewSource(seed))
	size := math.Sqrt(float64(WirelessNodes) / WirelessDensity)
	radius := graph.GeometricRadiusForDegree(WirelessDensity, WirelessDegree)
	g, pts, err := graph.RandomGeometric(WirelessNodes, size, radius, rng)
	if err != nil {
		return nil, nil, fmt.Errorf("topo: Wireless: %w", err)
	}
	if graph.Connected(g) {
		return g, pts, nil
	}
	sub, orig := graph.GiantComponent(g)
	subPts := make([]graph.Point, len(orig))
	for i, v := range orig {
		subPts[i] = pts[v]
	}
	return sub, subPts, nil
}

// Abilene returns the Abilene (Internet2) backbone as of the mid-2000s:
// 11 routers, 14 links. It is the standard small real-world wireline
// topology in the tomography literature and complements the synthetic
// AS1221-like map with a network whose structure is public knowledge.
func Abilene() *graph.Graph {
	g := graph.New()
	names := []string{
		"Seattle", "Sunnyvale", "LosAngeles", "Denver", "KansasCity",
		"Houston", "Chicago", "Indianapolis", "Atlanta", "WashingtonDC",
		"NewYork",
	}
	ids := make(map[string]graph.NodeID, len(names))
	for _, n := range names {
		ids[n] = g.AddNode(n)
	}
	edges := [][2]string{
		{"Seattle", "Sunnyvale"},
		{"Seattle", "Denver"},
		{"Sunnyvale", "LosAngeles"},
		{"Sunnyvale", "Denver"},
		{"LosAngeles", "Houston"},
		{"Denver", "KansasCity"},
		{"KansasCity", "Houston"},
		{"KansasCity", "Indianapolis"},
		{"Houston", "Atlanta"},
		{"Chicago", "Indianapolis"},
		{"Chicago", "NewYork"},
		{"Indianapolis", "Atlanta"},
		{"Atlanta", "WashingtonDC"},
		{"WashingtonDC", "NewYork"},
	}
	for _, e := range edges {
		if _, err := g.AddLink(ids[e[0]], ids[e[1]]); err != nil {
			// The table above is a fixed valid simple graph.
			panic(fmt.Sprintf("topo: Abilene edge %v: %v", e, err))
		}
	}
	return g
}

// FromEdgeListFile loads a topology from an edge-list file, e.g. a real
// Rocketfuel map exported as "routerA routerB" lines.
func FromEdgeListFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("topo: open %s: %w", path, err)
	}
	defer f.Close()
	g, err := graph.ParseEdgeList(f)
	if err != nil {
		return nil, fmt.Errorf("topo: parse %s: %w", path, err)
	}
	return g, nil
}
