package topo

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Backbone synthesizes an ISP backbone router graph at a target link
// count — the ≥100k-link scale the sparse estimation path exists for,
// where the AS1221-like map (ISP, ~300 links) is three orders of
// magnitude too small.
//
// Degree distribution (documented, deterministic for a given seed):
// preferential attachment with m = ISPAttach = 3, i.e. a seed clique of
// m+1 routers followed by one router per step attaching to 3 distinct
// existing routers with probability proportional to degree. This yields
// the Barabási-Albert power law P(k) ∝ k⁻³ with minimum degree 3 — the
// same heavy-tailed mix Rocketfuel measured on real ISP router maps,
// and the same model the paper-scale ISP() stands on, just grown to
// backbone size. Link count is exactly 3n − 6 for n routers; n is
// chosen as the smallest count reaching the requested links.
func Backbone(seed int64, links int) (*graph.Graph, error) {
	minLinks := ISPAttach * (ISPAttach + 1) / 2 // the seed clique
	if links < minLinks {
		return nil, fmt.Errorf("topo: Backbone: need ≥ %d links, got %d", minLinks, links)
	}
	// links(n) = 3n − 6, so the smallest sufficient n is ⌈(links+6)/3⌉.
	n := (links + 2*ISPAttach + ISPAttach - 1) / ISPAttach
	if n < ISPAttach+1 {
		n = ISPAttach + 1
	}
	g, err := graph.BarabasiAlbert(n, ISPAttach, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, fmt.Errorf("topo: Backbone: %w", err)
	}
	return g, nil
}

// BackbonePaths returns a full-column-rank measurement mesh for g: one
// direct probe per link (so the routing matrix contains the identity —
// full column rank by construction, and every link observable), plus
// `extra` shortest paths between seeded random router pairs that make
// the system overdetermined — without them R would be square and the
// paper's consistency check vacuous (Theorem 3's SquareR case).
//
// This is the monitoring pattern backbone operators actually deploy:
// cheap per-adjacency liveness probes everywhere, plus a budget of
// longer end-to-end probes between vantage points. Deterministic for a
// given seed. The total path count is NumLinks + extra.
func BackbonePaths(g *graph.Graph, extra int, seed int64) ([]graph.Path, error) {
	if extra < 1 {
		return nil, fmt.Errorf("topo: BackbonePaths: need ≥ 1 extra path (extra=%d) or R is square and detection vacuous", extra)
	}
	paths := make([]graph.Path, 0, g.NumLinks()+extra)
	for _, l := range g.Links() {
		paths = append(paths, graph.Path{
			Nodes: []graph.NodeID{l.A, l.B},
			Links: []graph.LinkID{l.ID},
		})
	}
	rng := rand.New(rand.NewSource(seed))
	n := g.NumNodes()
	for len(paths) < g.NumLinks()+extra {
		src := graph.NodeID(rng.Intn(n))
		dst := graph.NodeID(rng.Intn(n))
		if src == dst {
			continue
		}
		p, err := graph.ShortestPath(g, src, dst)
		if err != nil {
			return nil, fmt.Errorf("topo: BackbonePaths: %w", err)
		}
		if p.Len() < 2 {
			continue // one-hop duplicates of the probe mesh add nothing
		}
		paths = append(paths, p)
	}
	return paths, nil
}
