package topo

import (
	"testing"

	"repro/internal/graph"
)

func TestBackboneScalesToTarget(t *testing.T) {
	for _, target := range []int{6, 100, 1000, 10000} {
		g, err := Backbone(1, target)
		if err != nil {
			t.Fatalf("Backbone(1, %d): %v", target, err)
		}
		if g.NumLinks() < target {
			t.Errorf("Backbone(1, %d): only %d links", target, g.NumLinks())
		}
		// links(n) = 3n − 6 means the overshoot is at most one
		// attachment step.
		if g.NumLinks() > target+ISPAttach {
			t.Errorf("Backbone(1, %d): %d links overshoots by more than one step", target, g.NumLinks())
		}
		if !graph.Connected(g) {
			t.Errorf("Backbone(1, %d): disconnected", target)
		}
	}
}

func TestBackboneDegreeFloor(t *testing.T) {
	g, err := Backbone(3, 3000)
	if err != nil {
		t.Fatal(err)
	}
	// Preferential attachment with m = 3: every router has degree ≥ 3.
	for _, v := range g.Nodes() {
		if g.Degree(v) < ISPAttach {
			t.Fatalf("node %d has degree %d < %d", v, g.Degree(v), ISPAttach)
		}
	}
	// Heavy tail: some hub should far exceed the mean degree (~6).
	m := graph.ComputeMetrics(g)
	if m.MaxDegree < 4*int(m.MeanDegree) {
		t.Errorf("max degree %d shows no heavy tail (mean %.1f)", m.MaxDegree, m.MeanDegree)
	}
}

func TestBackboneDeterministic(t *testing.T) {
	a, err := Backbone(42, 500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Backbone(42, 500)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumLinks() != b.NumLinks() {
		t.Fatalf("link counts differ: %d vs %d", a.NumLinks(), b.NumLinks())
	}
	la, lb := a.Links(), b.Links()
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("link %d differs: %+v vs %+v", i, la[i], lb[i])
		}
	}
}

func TestBackboneRejectsTinyTarget(t *testing.T) {
	if _, err := Backbone(1, 2); err == nil {
		t.Fatal("accepted a target below the seed clique")
	}
}

func TestBackbonePathsMesh(t *testing.T) {
	g, err := Backbone(5, 300)
	if err != nil {
		t.Fatal(err)
	}
	const extra = 40
	paths, err := BackbonePaths(g, extra, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != g.NumLinks()+extra {
		t.Fatalf("got %d paths, want %d", len(paths), g.NumLinks()+extra)
	}
	covered := make(map[graph.LinkID]bool)
	for i, p := range paths {
		if err := p.Validate(g); err != nil {
			t.Fatalf("path %d invalid: %v", i, err)
		}
		for _, l := range p.Links {
			covered[l] = true
		}
		if i >= g.NumLinks() && p.Len() < 2 {
			t.Errorf("extra path %d is a one-hop duplicate", i)
		}
	}
	if len(covered) != g.NumLinks() {
		t.Fatalf("mesh covers %d of %d links", len(covered), g.NumLinks())
	}
}

func TestBackbonePathsDeterministic(t *testing.T) {
	g, err := Backbone(5, 200)
	if err != nil {
		t.Fatal(err)
	}
	a, err := BackbonePaths(g, 10, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BackbonePaths(g, 10, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("path %d differs between identical runs", i)
		}
	}
}

func TestBackbonePathsRejectsSquare(t *testing.T) {
	g, err := Backbone(5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BackbonePaths(g, 0, 1); err == nil {
		t.Fatal("extra=0 accepted: square R makes the consistency check vacuous")
	}
}
