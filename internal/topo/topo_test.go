package topo

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/tomo"
)

func TestFig1Shape(t *testing.T) {
	f := Fig1()
	if f.G.NumNodes() != 7 {
		t.Errorf("nodes = %d, want 7", f.G.NumNodes())
	}
	if f.G.NumLinks() != 10 {
		t.Errorf("links = %d, want 10", f.G.NumLinks())
	}
	if len(f.Monitors) != 3 || len(f.Attackers) != 2 {
		t.Errorf("monitors = %d, attackers = %d", len(f.Monitors), len(f.Attackers))
	}
	if !graph.Connected(f.G) {
		t.Error("Fig1 disconnected")
	}
}

// TestFig1PaperConstraints verifies every structural fact the paper
// states about the example network.
func TestFig1PaperConstraints(t *testing.T) {
	f := Fig1()

	// Links 2–8 all touch B or C (the attacker-controlled set).
	for num := 2; num <= 8; num++ {
		l, err := f.G.Link(f.PaperLink[num])
		if err != nil {
			t.Fatalf("Link %d: %v", num, err)
		}
		if !(l.Has(f.B) || l.Has(f.C)) {
			t.Errorf("paper link %d does not touch B or C", num)
		}
	}
	// Links 1, 9, 10 touch neither B nor C.
	for _, num := range []int{1, 9, 10} {
		l, _ := f.G.Link(f.PaperLink[num])
		if l.Has(f.B) || l.Has(f.C) {
			t.Errorf("paper link %d touches an attacker", num)
		}
	}

	// Every simple monitor-to-monitor path through link 1 carries B or C.
	mal := map[graph.NodeID]bool{f.B: true, f.C: true}
	for _, pair := range [][2]graph.NodeID{{f.M1, f.M2}, {f.M1, f.M3}, {f.M2, f.M3}} {
		paths, err := graph.SimplePaths(f.G, pair[0], pair[1], 0, 0)
		if err != nil {
			t.Fatalf("SimplePaths: %v", err)
		}
		for _, p := range paths {
			if p.HasLink(f.PaperLink[1]) && !p.HasAnyNode(mal) {
				t.Errorf("path %s uses link 1 without attackers", p.Format(f.G))
			}
		}
	}

	// The paper's path 17 (links 9, 10: M3–D–M2) avoids both attackers.
	p17 := graph.Path{
		Nodes: []graph.NodeID{f.M3, f.D, f.M2},
		Links: []graph.LinkID{f.PaperLink[9], f.PaperLink[10]},
	}
	if err := p17.Validate(f.G); err != nil {
		t.Fatalf("path 17 invalid: %v", err)
	}
	if p17.HasAnyNode(mal) {
		t.Error("path 17 carries an attacker")
	}

	// The paper's path 3 (links 1,4,7,10 over M1,A,C,D,M2) is valid.
	p3 := graph.Path{
		Nodes: []graph.NodeID{f.M1, f.A, f.C, f.D, f.M2},
		Links: []graph.LinkID{f.PaperLink[1], f.PaperLink[4], f.PaperLink[7], f.PaperLink[10]},
	}
	if err := p3.Validate(f.G); err != nil {
		t.Errorf("paper path 3 invalid: %v", err)
	}
}

func TestFig1EnoughPaths(t *testing.T) {
	// The paper selects 23 measurement paths; the topology must offer
	// at least that many simple monitor-to-monitor paths.
	f := Fig1()
	total := 0
	for _, pair := range [][2]graph.NodeID{{f.M1, f.M2}, {f.M1, f.M3}, {f.M2, f.M3}} {
		paths, err := graph.SimplePaths(f.G, pair[0], pair[1], 0, 0)
		if err != nil {
			t.Fatalf("SimplePaths: %v", err)
		}
		total += len(paths)
	}
	if total < 23 {
		t.Errorf("only %d monitor-to-monitor simple paths, paper uses 23", total)
	}
}

func TestISP(t *testing.T) {
	g, err := ISP(1)
	if err != nil {
		t.Fatalf("ISP: %v", err)
	}
	if g.NumNodes() != ISPNodes {
		t.Errorf("nodes = %d, want %d", g.NumNodes(), ISPNodes)
	}
	// ≈300 links: C(4,2) + 3·100 = 306.
	if g.NumLinks() < 290 || g.NumLinks() > 320 {
		t.Errorf("links = %d, want ≈306", g.NumLinks())
	}
	if !graph.Connected(g) {
		t.Error("ISP topology disconnected")
	}
}

func TestISPDeterministic(t *testing.T) {
	a, err := ISP(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ISP(7)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumLinks() != b.NumLinks() {
		t.Error("ISP not deterministic")
	}
}

func TestWireless(t *testing.T) {
	g, pts, err := Wireless(1)
	if err != nil {
		t.Fatalf("Wireless: %v", err)
	}
	if g.NumNodes() == 0 || g.NumNodes() > WirelessNodes {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if len(pts) != g.NumNodes() {
		t.Fatalf("points = %d, nodes = %d", len(pts), g.NumNodes())
	}
	if !graph.Connected(g) {
		t.Error("Wireless returned disconnected graph")
	}
	// Average degree should be in the ballpark of the λ=5 design.
	avg := 2 * float64(g.NumLinks()) / float64(g.NumNodes())
	if avg < 2 || avg > 9 {
		t.Errorf("average degree %.1f implausible for λ=5 design", avg)
	}
}

func TestFromEdgeListFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.txt")
	if err := os.WriteFile(path, []byte("a b\nb c\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := FromEdgeListFile(path)
	if err != nil {
		t.Fatalf("FromEdgeListFile: %v", err)
	}
	if g.NumNodes() != 3 || g.NumLinks() != 2 {
		t.Errorf("parsed %d nodes %d links", g.NumNodes(), g.NumLinks())
	}
	if _, err := FromEdgeListFile(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("a a\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := FromEdgeListFile(bad); err == nil {
		t.Error("self-loop file accepted")
	}
}

func TestAbilene(t *testing.T) {
	g := Abilene()
	if g.NumNodes() != 11 {
		t.Errorf("nodes = %d, want 11", g.NumNodes())
	}
	if g.NumLinks() != 14 {
		t.Errorf("links = %d, want 14", g.NumLinks())
	}
	if !graph.Connected(g) {
		t.Error("Abilene disconnected")
	}
	// Degree sanity: every router has 2–4 links on the real map.
	for _, v := range g.Nodes() {
		if d := g.Degree(v); d < 2 || d > 4 {
			name, _ := g.NodeName(v)
			t.Errorf("%s degree %d outside [2,4]", name, d)
		}
	}
}

func TestAbileneIdentifiable(t *testing.T) {
	// With enough monitors the Abilene map is fully identifiable.
	g := Abilene()
	rng := rand.New(rand.NewSource(2))
	_, paths, rank, err := tomo.PlaceMonitors(g, rng, tomo.PlaceOptions{
		Initial: 5,
		Select:  tomo.SelectOptions{PerPair: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rank != g.NumLinks() {
		t.Fatalf("rank = %d of %d", rank, g.NumLinks())
	}
	if len(paths) <= g.NumLinks() {
		t.Errorf("square system (%d paths); want redundancy", len(paths))
	}
}
