package experiment

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden figure tables")

// Golden-figure regression tests: the rendered summary table of each
// figure is pinned under testdata/. Any change to the RNG streams, the
// solvers, or the table formatting shows up as a diff here. Regenerate
// with:
//
//	go test ./internal/experiment -run TestGoldenFigures -update
func TestGoldenFigures(t *testing.T) {
	cases := []struct {
		name string
		run  func() (fmt.Stringer, error)
	}{
		{"fig4", func() (fmt.Stringer, error) { return Fig4(1) }},
		{"fig5", func() (fmt.Stringer, error) { return Fig5(1) }},
		{"fig6", func() (fmt.Stringer, error) { return Fig6(1) }},
		{"fig7-wireless", func() (fmt.Stringer, error) {
			return Fig7(Fig7Config{Kind: Wireless, Seed: 1, Trials: 40})
		}},
		{"fig8-wireless", func() (fmt.Stringer, error) {
			return Fig8(Fig8Config{Kind: Wireless, Seed: 1, Trials: 4})
		}},
		{"fig9", func() (fmt.Stringer, error) {
			return Fig9(Fig9Config{Seed: 1, Trials: 3})
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			r, err := tc.run()
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			got := r.String()
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatalf("update %s: %v", path, err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read %s (run with -update to create): %v", path, err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from golden table.\ngot:\n%s\nwant:\n%s\nRun with -update if the change is intended.",
					tc.name, got, want)
			}
		})
	}
}
