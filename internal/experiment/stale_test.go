package experiment

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStaleStudy(t *testing.T) {
	r, err := StaleStudy(StaleStudyConfig{Seed: 1, Trials: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows, want 3 (lags 0,1,2)", len(r.Rows))
	}
	lag0 := r.Rows[0]
	if lag0.CleanAlarms != 0 {
		t.Errorf("prompt defender false-alarmed %d/%d clean rounds", lag0.CleanAlarms, lag0.CleanRounds)
	}
	for _, row := range r.Rows {
		// The imperfect-cut attack residual dwarfs any routing delta:
		// the alarm itself is robust to staleness at the default α.
		if row.AttackAlarms != row.AttackRounds {
			t.Errorf("lag %d: caught %d/%d attacked rounds", row.Lag, row.AttackAlarms, row.AttackRounds)
		}
		if row.Lag > 0 {
			// The churn penalty: a stale matrix inflates the clean
			// residual and pollutes the damage attribution.
			if row.CleanResidual <= 2*lag0.CleanResidual {
				t.Errorf("lag %d clean residual %.1f not inflated over prompt %.1f",
					row.Lag, row.CleanResidual, lag0.CleanResidual)
			}
			if row.MeanDamage >= lag0.MeanDamage {
				t.Errorf("lag %d damage estimate %.1f not degraded from prompt %.1f",
					row.Lag, row.MeanDamage, lag0.MeanDamage)
			}
		}
	}

	// Determinism: a rerun produces identical rows.
	r2, err := StaleStudy(StaleStudyConfig{Seed: 1, Trials: 4, Parallel: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Rows {
		if r.Rows[i] != r2.Rows[i] {
			t.Fatalf("row %d drifted across runs:\n %+v\n %+v", i, r.Rows[i], r2.Rows[i])
		}
	}
}

// TestGoldenStaleStudy pins the rendered per-lag table. Regenerate with:
//
//	go test ./internal/experiment -run TestGoldenStaleStudy -update
func TestGoldenStaleStudy(t *testing.T) {
	r, err := StaleStudy(StaleStudyConfig{Seed: 1, Trials: 4})
	if err != nil {
		t.Fatal(err)
	}
	got := r.String()
	path := filepath.Join("testdata", "stale.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("update %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s (run with -update to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("stale study drifted from golden:\n got:\n%s\n want:\n%s", got, want)
	}
}
