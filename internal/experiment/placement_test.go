package experiment

import (
	"strings"
	"testing"
)

func TestPlacementStudy(t *testing.T) {
	r, err := PlacementStudy(PlacementStudyConfig{Seed: 1, Trials: 10})
	if err != nil {
		t.Fatalf("PlacementStudy: %v", err)
	}
	for _, arm := range []PlacementArm{r.Plain, r.Secure} {
		if arm.MaxPresence <= 0 || arm.MaxPresence > 1 {
			t.Errorf("secure=%v: max presence %g outside (0,1]", arm.Secure, arm.MaxPresence)
		}
		if arm.MeanPresence <= 0 || arm.MeanPresence > arm.MaxPresence {
			t.Errorf("secure=%v: mean presence %g inconsistent with max %g",
				arm.Secure, arm.MeanPresence, arm.MaxPresence)
		}
		if arm.AttackSuccess < 0 || arm.AttackSuccess > 1 {
			t.Errorf("secure=%v: success %g outside [0,1]", arm.Secure, arm.AttackSuccess)
		}
	}
	// Section VI's objective: the secure policy must not increase the
	// maximum node presence ratio.
	if r.Secure.MaxPresence > r.Plain.MaxPresence+1e-9 {
		t.Errorf("secure max presence %.3f worse than plain %.3f",
			r.Secure.MaxPresence, r.Plain.MaxPresence)
	}
	if !strings.Contains(r.String(), "secure") {
		t.Error("String output malformed")
	}
}
