package experiment

import (
	"strings"
	"testing"
)

func TestLatencyStudy(t *testing.T) {
	r, err := LatencyStudy(LatencyStudyConfig{Seed: 1, Trials: 4})
	if err != nil {
		t.Fatalf("LatencyStudy: %v", err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	anyFeasible := false
	prevMean := -2.0
	for _, p := range r.Points {
		if !p.Feasible {
			continue
		}
		anyFeasible = true
		if p.Detected == 0 {
			t.Errorf("budget %.0f: CUSUM never caught the persistent attack", p.Budget)
			continue
		}
		if p.MeanRounds < 0 {
			t.Errorf("budget %.0f: mean rounds unset with detections", p.Budget)
		}
		// Larger budgets inject more bias per round, so detection should
		// not get slower as the budget grows (allow 1-round slack for
		// noise).
		if prevMean >= 0 && p.MeanRounds > prevMean+1 {
			t.Errorf("budget %.0f: mean rounds %.1f slower than smaller budget's %.1f",
				p.Budget, p.MeanRounds, prevMean)
		}
		if p.MeanRounds >= 0 {
			prevMean = p.MeanRounds
		}
	}
	if !anyFeasible {
		t.Fatal("no budget feasible")
	}
	if !strings.Contains(r.String(), "detection latency") {
		t.Error("String output malformed")
	}
}
