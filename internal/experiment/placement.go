package experiment

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mc"
	"repro/internal/netsim"
	"repro/internal/tomo"
	"repro/internal/topo"
)

// PlacementStudyConfig parameterizes the Section VI placement study.
type PlacementStudyConfig struct {
	// Seed drives topology, placement, and trials.
	Seed int64
	// Trials is the number of random single-attacker max-damage
	// attempts per selection policy (default 30).
	Trials int
	// Parallel is the trial worker count (0 = GOMAXPROCS); it never
	// changes the result.
	Parallel int
	// Progress, when non-nil, is called after each completed trial.
	Progress mc.Progress
}

func (c PlacementStudyConfig) trials() int {
	if c.Trials <= 0 {
		return 30
	}
	return c.Trials
}

// PlacementArm is one selection policy's outcome.
type PlacementArm struct {
	// Secure marks the presence-minimizing policy.
	Secure bool `json:"secure"`
	// MaxPresence is the largest interior (non-endpoint) node presence
	// ratio of the selected path set — the quantity Section VI proposes
	// minimizing.
	MaxPresence float64 `json:"max_presence"`
	// MeanPresence averages the interior presence ratios.
	MeanPresence float64 `json:"mean_presence"`
	// AttackSuccess is the single-attacker max-damage success rate on
	// this path selection.
	AttackSuccess float64 `json:"attack_success"`
}

// PlacementStudyResult compares plain vs security-aware measurement-path
// selection (Section VI's proposal: after identifiability, minimize each
// node's presence ratio so a compromised node controls as few paths as
// possible).
type PlacementStudyResult struct {
	Plain  PlacementArm `json:"plain"`
	Secure PlacementArm `json:"secure"`
}

// PlacementStudy runs the comparison on the synthetic ISP topology: the
// same monitors, the same rank-greedy core, but redundancy paths chosen
// either in pool order (plain) or to minimize the maximum node presence
// (secure); then random single attackers attempt max-damage scapegoating
// against both selections.
func PlacementStudy(cfg PlacementStudyConfig) (*PlacementStudyResult, error) {
	g, err := topo.ISP(cfg.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 4000))
	monitors, _, rank, err := tomo.PlaceMonitors(g, rng, tomo.PlaceOptions{
		Initial: 8,
		Select:  tomo.SelectOptions{PerPair: 6},
	})
	if err != nil {
		return nil, err
	}
	if rank != g.NumLinks() {
		return nil, fmt.Errorf("experiment: placement study rank %d of %d", rank, g.NumLinks())
	}
	opts := tomo.SelectOptions{PerPair: 6}

	out := &PlacementStudyResult{}
	for _, secure := range []bool{false, true} {
		var (
			paths []graph.Path
			r     int
		)
		if secure {
			paths, r, err = tomo.SelectPathsSecure(g, monitors, opts)
		} else {
			paths, r, err = tomo.SelectPaths(g, monitors, opts)
		}
		if err != nil {
			return nil, err
		}
		if r != g.NumLinks() {
			return nil, fmt.Errorf("experiment: %v selection rank %d of %d", secure, r, g.NumLinks())
		}
		sys, err := tomo.NewSystem(g, paths)
		if err != nil {
			return nil, err
		}
		arm := PlacementArm{Secure: secure}
		var sum float64
		var n int
		for _, ratio := range tomo.InteriorPresenceRatios(g, paths) {
			sum += ratio
			n++
			if ratio > arm.MaxPresence {
				arm.MaxPresence = ratio
			}
		}
		if n > 0 {
			arm.MeanPresence = sum / float64(n)
		}

		// Both arms split the same base seed, so the same attacker and
		// delay draws hit the plain and secure selections alike.
		trialSeed := cfg.Seed + 4100
		feasible, err := mc.Run(cfg.trials(), mc.Options{Workers: cfg.Parallel, Progress: cfg.Progress},
			func(trial int) (bool, error) {
				rng := mc.RNG(trialSeed, trial)
				attacker := pickRandomAttackers(g, 1, rng)
				sc := &core.Scenario{
					Sys:        sys,
					Thresholds: tomo.DefaultThresholds(),
					Attackers:  attacker,
					TrueX:      netsim.RoutineDelays(g, rng),
				}
				res, err := core.MaxDamage(sc, core.MaxDamageOptions{MaxVictims: 1, FirstFeasible: true})
				if err != nil {
					return false, err
				}
				return res.Feasible, nil
			})
		if err != nil {
			return nil, err
		}
		successes := 0
		for _, ok := range feasible {
			if ok {
				successes++
			}
		}
		arm.AttackSuccess = float64(successes) / float64(cfg.trials())
		if secure {
			out.Secure = arm
		} else {
			out.Plain = arm
		}
	}
	return out, nil
}

// String renders the comparison.
func (r *PlacementStudyResult) String() string {
	var b strings.Builder
	b.WriteString("Secure monitor-path selection study (Section VI proposal)\n")
	fmt.Fprintf(&b, "%-10s %14s %14s %16s\n", "policy", "max presence", "mean presence", "attack success")
	for _, arm := range []PlacementArm{r.Plain, r.Secure} {
		name := "plain"
		if arm.Secure {
			name = "secure"
		}
		fmt.Fprintf(&b, "%-10s %13.1f%% %13.1f%% %15.1f%%\n",
			name, 100*arm.MaxPresence, 100*arm.MeanPresence, 100*arm.AttackSuccess)
	}
	return b.String()
}
