package experiment

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/graph"
	"repro/internal/mc"
	"repro/internal/netsim"
)

// RocPoint is one operating point of the detector.
type RocPoint struct {
	Alpha          float64 `json:"alpha"`
	FalseAlarmRate float64 `json:"false_alarm_rate"`
	DetectionRate  float64 `json:"detection_rate"`
}

// RocStudyResult sweeps the detection threshold α and measures the
// false-alarm rate on noisy clean rounds against the detection rate on
// weak (throttled) imperfect-cut attacks. It makes Remark 4's "α can be
// empirically determined" quantitative: below the noise floor the
// detector drowns in false alarms; above the weakest attack's residual
// it goes blind; the usable window in between is what calibration finds.
type RocStudyResult struct {
	// AttackScale throttles the optimal manipulation (1 = full attack).
	AttackScale float64    `json:"attack_scale"`
	Points      []RocPoint `json:"points"`
}

// RocStudyConfig parameterizes the sweep.
type RocStudyConfig struct {
	Seed int64
	// Rounds per operating point for each of the clean and attacked
	// arms (default 40).
	Rounds int
	// Jitter is per-hop noise (default 2 ms).
	Jitter float64
	// AttackScale throttles the attack (default 0.05 — a weak attack
	// whose residual sits near the noise floor, where the trade-off is
	// visible).
	AttackScale float64
	// Alphas are the thresholds to sweep (default a decade around the
	// noise floor).
	Alphas []float64
	// Parallel is the per-round worker count (0 = GOMAXPROCS); it never
	// changes the result.
	Parallel int
	// Progress, when non-nil, is called after each completed round.
	Progress mc.Progress
}

func (c RocStudyConfig) rounds() int {
	if c.Rounds <= 0 {
		return 40
	}
	return c.Rounds
}

func (c RocStudyConfig) jitter() float64 {
	if c.Jitter <= 0 {
		return 2
	}
	return c.Jitter
}

func (c RocStudyConfig) scale() float64 {
	if c.AttackScale <= 0 {
		return 0.05
	}
	return c.AttackScale
}

func (c RocStudyConfig) alphas() []float64 {
	if len(c.Alphas) > 0 {
		return c.Alphas
	}
	return []float64{25, 50, 100, 200, 400, 800, 1600}
}

// RocStudy runs the sweep on the Fig. 1 network with the chosen-victim
// attack on link 10 throttled to AttackScale.
func RocStudy(cfg RocStudyConfig) (*RocStudyResult, error) {
	env, err := NewFig1Env(cfg.Seed)
	if err != nil {
		return nil, err
	}
	res, err := core.ChosenVictim(env.Scenario, []graph.LinkID{env.Topo.PaperLink[10]})
	if err != nil {
		return nil, err
	}
	if !res.Feasible {
		return nil, fmt.Errorf("experiment: roc baseline infeasible")
	}
	m := res.M.Scale(cfg.scale())
	plan := &netsim.AttackPlan{
		Attackers:  map[graph.NodeID]bool{env.Topo.B: true, env.Topo.C: true},
		ExtraDelay: m,
	}
	det, err := detect.New(env.Sys, 1) // threshold irrelevant; we keep norms
	if err != nil {
		return nil, err
	}
	// Clean and attacked arms use disjoint halves of the split stream:
	// round k of the attacked arm is trial rounds+k.
	roundSeed := cfg.Seed + 9000
	simulate := func(p *netsim.AttackPlan, arm int) ([]float64, error) {
		return mc.Run(cfg.rounds(), mc.Options{Workers: cfg.Parallel, Progress: cfg.Progress},
			func(k int) (float64, error) {
				y, err := netsim.RunDelay(netsim.Config{
					Graph: env.Topo.G, Paths: env.Sys.Paths(), LinkDelays: env.Scenario.TrueX,
					Jitter: cfg.jitter(), ProbesPerPath: 3,
					RNG:  mc.RNG(roundSeed, arm*cfg.rounds()+k),
					Plan: p,
				})
				if err != nil {
					return 0, err
				}
				rep, err := det.Inspect(y)
				if err != nil {
					return 0, err
				}
				return rep.ResidualNorm, nil
			})
	}
	cleanNorms, err := simulate(nil, 0)
	if err != nil {
		return nil, err
	}
	attackNorms, err := simulate(plan, 1)
	if err != nil {
		return nil, err
	}
	out := &RocStudyResult{AttackScale: cfg.scale()}
	for _, alpha := range cfg.alphas() {
		pt := RocPoint{Alpha: alpha}
		for _, n := range cleanNorms {
			if n > alpha {
				pt.FalseAlarmRate++
			}
		}
		for _, n := range attackNorms {
			if n > alpha {
				pt.DetectionRate++
			}
		}
		pt.FalseAlarmRate /= float64(len(cleanNorms))
		pt.DetectionRate /= float64(len(attackNorms))
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// String renders the operating-point table.
func (r *RocStudyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Detector operating points (weak attack, scale %.2f of the optimum)\n", r.AttackScale)
	fmt.Fprintf(&b, "%-12s %16s %16s\n", "α (ms)", "false alarms", "detection rate")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-12.0f %15.1f%% %15.1f%%\n", p.Alpha, 100*p.FalseAlarmRate, 100*p.DetectionRate)
	}
	return b.String()
}
