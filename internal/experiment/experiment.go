// Package experiment reproduces the paper's evaluation (Section V):
// one runner per figure, each returning a structured result plus a
// text rendering whose rows/series match what the paper plots.
//
//	Fig. 4 — chosen-victim scapegoating on the Fig. 1 network
//	Fig. 5 — maximum-damage scapegoating on the Fig. 1 network
//	Fig. 6 — obfuscation on the Fig. 1 network
//	Fig. 7 — chosen-victim success probability vs attack presence ratio
//	Fig. 8 — single-attacker max-damage and obfuscation success
//	Fig. 9 — detection ratios under perfect and imperfect cuts
//
// All runners are deterministic for a given seed. The Monte Carlo
// runners (Figs. 7–9 and the beyond-paper studies) execute their trials
// through the shared internal/mc pool: each trial derives its own PRNG
// from (seed, trial index), so results are bit-identical no matter how
// many workers run them — the Parallel knob on each config only changes
// wall-clock time.
package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/netsim"
	"repro/internal/tomo"
	"repro/internal/topo"
)

// Fig1Env is the assembled simple-network environment shared by the
// Fig. 4–6 experiments: topology, 23-path identifiable system, routine
// delays, attackers {B, C}.
type Fig1Env struct {
	Topo     *topo.Fig1Topology
	Sys      *tomo.System
	Scenario *core.Scenario
}

// NewFig1Env builds the environment with routine U[1,20] ms delays drawn
// from the seed.
func NewFig1Env(seed int64) (*Fig1Env, error) {
	f := topo.Fig1()
	paths, rank, err := tomo.SelectPaths(f.G, f.Monitors, tomo.SelectOptions{Exhaustive: true, TargetPaths: 23})
	if err != nil {
		return nil, fmt.Errorf("experiment: fig1 paths: %w", err)
	}
	if rank != f.G.NumLinks() {
		return nil, fmt.Errorf("experiment: fig1 rank %d, want %d", rank, f.G.NumLinks())
	}
	sys, err := tomo.NewSystem(f.G, paths)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig1 system: %w", err)
	}
	x := netsim.RoutineDelays(f.G, rand.New(rand.NewSource(seed)))
	sc := &core.Scenario{
		Sys:        sys,
		Thresholds: tomo.DefaultThresholds(),
		Attackers:  f.Attackers,
		TrueX:      x,
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("experiment: fig1 scenario: %w", err)
	}
	return &Fig1Env{Topo: f, Sys: sys, Scenario: sc}, nil
}

// LinkSeries is a per-link value series keyed by the paper's 1-based
// link numbers — the bar heights of Figs. 4–6.
type LinkSeries struct {
	// Estimated[k] is the estimated metric of paper link k (index 0
	// unused).
	Estimated [11]float64 `json:"estimated"`
	// State[k] is the classification of paper link k.
	State [11]tomo.State `json:"state"`
}

func newLinkSeries(env *Fig1Env, xhat la.Vector, states []tomo.State) LinkSeries {
	var s LinkSeries
	for num := 1; num <= 10; num++ {
		id := env.Topo.PaperLink[num]
		s.Estimated[num] = xhat[id]
		s.State[num] = states[id]
	}
	return s
}

// pickRandomAttackers draws k distinct random nodes.
func pickRandomAttackers(g *graph.Graph, k int, rng *rand.Rand) []graph.NodeID {
	perm := rng.Perm(g.NumNodes())
	out := make([]graph.NodeID, 0, k)
	for _, i := range perm {
		if len(out) == k {
			break
		}
		out = append(out, graph.NodeID(i))
	}
	return out
}
