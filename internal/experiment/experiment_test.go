package experiment

import (
	"strings"
	"testing"

	"repro/internal/tomo"
)

func TestNewFig1Env(t *testing.T) {
	env, err := NewFig1Env(1)
	if err != nil {
		t.Fatalf("NewFig1Env: %v", err)
	}
	if env.Sys.NumPaths() != 23 {
		t.Errorf("paths = %d, want 23", env.Sys.NumPaths())
	}
	if !env.Sys.Identifiable() {
		t.Error("Fig1 system not identifiable")
	}
	for i, x := range env.Scenario.TrueX {
		if x < 1 || x > 20 {
			t.Errorf("TrueX[%d] = %g outside routine [1,20]", i, x)
		}
	}
}

func TestFig4ShapeTargets(t *testing.T) {
	// Paper Fig. 4: victim link 10 crosses the 800 ms abnormal
	// threshold, the attackers' links 2–8 stay normal, and the attack is
	// feasible despite the imperfect cut.
	r, err := Fig4(1)
	if err != nil {
		t.Fatalf("Fig4: %v", err)
	}
	if !r.Feasible {
		t.Fatal("Fig4 infeasible")
	}
	if !r.VictimAbnormal {
		t.Errorf("victim link 10 = %.1f ms (%v), want abnormal",
			r.Links.Estimated[10], r.Links.State[10])
	}
	if !r.AttackersNormal {
		t.Error("attacker links not all normal")
	}
	// Confined: no innocent link besides the victim is abnormal.
	for num := 1; num <= 9; num++ {
		if r.Links.State[num] == tomo.Abnormal {
			t.Errorf("link %d abnormal in Fig4 (confined run)", num)
		}
	}
	if r.AvgPathDelay <= 0 || r.Damage <= 0 {
		t.Error("missing damage/avg delay")
	}
	if !strings.Contains(r.String(), "abnormal") {
		t.Error("String output missing states")
	}
}

func TestFig5ShapeTargets(t *testing.T) {
	// Paper Fig. 5: highest average end-to-end delay of all attacks,
	// attacker links normal, and more than one link may cross the
	// threshold (victim + side effect, as in the paper's links 1 and 9).
	r5, err := Fig5(1)
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	if !r5.Feasible {
		t.Fatal("Fig5 infeasible")
	}
	if !r5.AttackersNormal {
		t.Error("attacker links not all normal")
	}
	if len(r5.AbnormalNumbers) == 0 {
		t.Fatal("no abnormal links in max-damage run")
	}
	r4, err := Fig4(1)
	if err != nil {
		t.Fatal(err)
	}
	if r5.AvgPathDelay < r4.AvgPathDelay-1e-6 {
		t.Errorf("max-damage avg delay %.2f below chosen-victim %.2f; paper reports it highest",
			r5.AvgPathDelay, r4.AvgPathDelay)
	}
	if r5.Damage < r4.Damage-1e-6 {
		t.Errorf("max-damage damage %.1f below chosen-victim %.1f", r5.Damage, r4.Damage)
	}
	// Victims never include attacker links 2–8.
	for _, v := range r5.VictimNumbers {
		if v >= 2 && v <= 8 {
			t.Errorf("victim %d is an attacker link", v)
		}
	}
	if !strings.Contains(r5.String(), "abnormal links") {
		t.Error("String output missing abnormal list")
	}
}

func TestFig6ShapeTargets(t *testing.T) {
	// Paper Fig. 6: every estimated delay lies in the uncertain band —
	// no link clearly normal or abnormal.
	r, err := Fig6(1)
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	if !r.Feasible {
		t.Fatal("Fig6 infeasible")
	}
	if !r.AllTargetsUncertain {
		t.Error("some L_o link not uncertain (violates Eq. 10)")
	}
	if r.UncertainCount < 8 {
		t.Errorf("only %d/10 links uncertain; paper shows all in the band", r.UncertainCount)
	}
	th := tomo.DefaultThresholds()
	for num := 1; num <= 10; num++ {
		if r.Links.State[num] == tomo.Uncertain {
			x := r.Links.Estimated[num]
			if x < th.Lower || x > th.Upper {
				t.Errorf("link %d claims uncertain but estimate %.1f outside band", num, x)
			}
		}
	}
}

func TestFig6AcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		r, err := Fig6(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !r.Feasible {
			t.Errorf("seed %d infeasible", seed)
		}
	}
}

func TestFig456Deterministic(t *testing.T) {
	a, err := Fig4(9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig4(9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Damage != b.Damage || a.AvgPathDelay != b.AvgPathDelay {
		t.Error("Fig4 not deterministic for equal seeds")
	}
}

func TestResultStringRenderers(t *testing.T) {
	// Feasible renderings carry the link table; infeasible ones say so.
	r4, err := Fig4(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r4.String(), "link") {
		t.Error("Fig4 String missing table")
	}
	if s := (&Fig4Result{}).String(); !strings.Contains(s, "INFEASIBLE") {
		t.Errorf("infeasible Fig4 String = %q", s)
	}
	if s := (&Fig5Result{}).String(); !strings.Contains(s, "INFEASIBLE") {
		t.Errorf("infeasible Fig5 String = %q", s)
	}
	if s := (&Fig6Result{}).String(); !strings.Contains(s, "INFEASIBLE") {
		t.Errorf("infeasible Fig6 String = %q", s)
	}
	r6, err := Fig6(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r6.String(), "uncertain links") {
		t.Error("Fig6 String missing summary")
	}
	if s := (&LossStudyResult{}).String(); !strings.Contains(s, "INFEASIBLE") {
		t.Errorf("infeasible loss String = %q", s)
	}
}
