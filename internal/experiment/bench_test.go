package experiment

import (
	"fmt"
	"testing"
)

// Trial-pool benchmarks: the same Fig. 7 ISP run at 1 and 8 workers.
// Results are bit-identical across the variants (see
// TestRunnersWorkerCountInvariant); the speedup scales with physical
// cores, so on a multicore machine the 8-worker variant should run the
// 64 trials several times faster than the sequential one.
func BenchmarkFig7ISPTrialPool(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Fig7(Fig7Config{
					Kind: Wireline, Seed: 1, Trials: 64, Parallel: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9TrialPool covers the flattened (strategy × cut) pool,
// whose per-trial cost is dominated by the packet simulator rather than
// LP solves.
func BenchmarkFig9TrialPool(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Fig9(Fig9Config{
					Seed: 1, Trials: 8, Parallel: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
