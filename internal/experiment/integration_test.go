package experiment

// Cross-module integration properties on RANDOM topologies: the unit
// suites pin the theorems on the Fig. 1 example; these tests re-derive
// them on arbitrary Erdős–Rényi graphs with randomly placed monitors,
// exercising graph generation, placement, path selection, estimation,
// attack LPs, cuts, and detection together.

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/netsim"
	"repro/internal/tomo"
)

// randomIdentifiableSystem builds a random connected ER graph with an
// identifiable tomography system, or reports failure for this draw.
func randomIdentifiableSystem(seed int64) (*tomo.System, *rand.Rand, bool) {
	rng := rand.New(rand.NewSource(seed))
	g, err := graph.ErdosRenyi(8+rng.Intn(8), 0.35, rng)
	if err != nil || !graph.Connected(g) {
		return nil, nil, false
	}
	_, paths, rank, err := tomo.PlaceMonitors(g, rng, tomo.PlaceOptions{
		Initial: 4,
		Select:  tomo.SelectOptions{PerPair: 6},
	})
	if err != nil || rank != g.NumLinks() {
		return nil, nil, false
	}
	sys, err := tomo.NewSystem(g, paths)
	if err != nil || !sys.Identifiable() {
		return nil, nil, false
	}
	return sys, rng, true
}

func TestRandomTopologyEstimationExact(t *testing.T) {
	// Estimate∘Measure = identity on every identifiable random system,
	// via the packet simulator (zero noise), and the clean residual is
	// zero — no false alarms ever.
	built := 0
	for seed := int64(0); seed < 40 && built < 10; seed++ {
		sys, rng, ok := randomIdentifiableSystem(seed)
		if !ok {
			continue
		}
		built++
		x := netsim.RoutineDelays(sys.Graph(), rng)
		y, err := netsim.RunDelay(netsim.Config{
			Graph: sys.Graph(), Paths: sys.Paths(), LinkDelays: x,
		})
		if err != nil {
			t.Fatal(err)
		}
		xhat, err := sys.Estimate(y)
		if err != nil {
			t.Fatal(err)
		}
		if !xhat.Equal(la.Vector(x), 1e-7) {
			t.Errorf("seed %d: estimation not exact", seed)
		}
		det, err := detect.New(sys, 0)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := det.Inspect(y)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Detected {
			t.Errorf("seed %d: false alarm on clean random system", seed)
		}
	}
	if built < 5 {
		t.Fatalf("only %d identifiable random systems built", built)
	}
}

func TestRandomTopologyTheorem1And3(t *testing.T) {
	// On random systems: pick a random victim link, search a perfect-cut
	// attacker set; when one exists, the stealthy attack must be
	// feasible (Theorem 1) and leave a zero residual (Theorem 3).
	verified := 0
	for seed := int64(100); seed < 170 && verified < 6; seed++ {
		sys, rng, ok := randomIdentifiableSystem(seed)
		if !ok {
			continue
		}
		g := sys.Graph()
		victim := graph.LinkID(rng.Intn(g.NumLinks()))
		set, err := core.FindPerfectCutAttackers(sys, []graph.LinkID{victim}, 3)
		if err != nil {
			t.Fatal(err)
		}
		if set == nil {
			continue
		}
		pc, err := core.PerfectCut(sys, set, []graph.LinkID{victim})
		if err != nil {
			t.Fatal(err)
		}
		if !pc {
			t.Fatalf("seed %d: found set does not cut", seed)
		}
		sc := &core.Scenario{
			Sys:        sys,
			Thresholds: tomo.DefaultThresholds(),
			Attackers:  set,
			TrueX:      netsim.RoutineDelays(g, rng),
			Stealthy:   true,
		}
		res, err := core.ChosenVictim(sc, []graph.LinkID{victim})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			t.Errorf("seed %d: Theorem 1 violated — perfect cut but stealthy attack infeasible", seed)
			continue
		}
		resid, err := sys.Residual(res.XHat, res.YObserved)
		if err != nil {
			t.Fatal(err)
		}
		if resid.Norm1() > 1e-6 {
			t.Errorf("seed %d: Theorem 3 violated — stealthy residual %g", seed, resid.Norm1())
		}
		if res.States[victim] != tomo.Abnormal {
			t.Errorf("seed %d: victim not abnormal", seed)
		}
		if err := sc.CheckConstraint1(res.M); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		verified++
	}
	if verified < 3 {
		t.Fatalf("only %d random perfect-cut attacks verified", verified)
	}
}

func TestRandomTopologyImperfectCutDetected(t *testing.T) {
	// Converse direction on random systems: when the attackers do NOT
	// perfectly cut the victim and the plain attack succeeds, the
	// detector must fire.
	verified := 0
	for seed := int64(200); seed < 280 && verified < 6; seed++ {
		sys, rng, ok := randomIdentifiableSystem(seed)
		if !ok {
			continue
		}
		g := sys.Graph()
		attacker := graph.NodeID(rng.Intn(g.NumNodes()))
		excluded := g.IncidentLinkSet([]graph.NodeID{attacker})
		var victim graph.LinkID
		found := false
		for l := 0; l < g.NumLinks(); l++ {
			lid := graph.LinkID(l)
			if excluded[lid] {
				continue
			}
			ratio, err := core.PresenceRatio(sys, []graph.NodeID{attacker}, []graph.LinkID{lid})
			if err != nil {
				t.Fatal(err)
			}
			if ratio > 0 && ratio < 1 {
				victim, found = lid, true
				break
			}
		}
		if !found {
			continue
		}
		sc := &core.Scenario{
			Sys:        sys,
			Thresholds: tomo.DefaultThresholds(),
			Attackers:  []graph.NodeID{attacker},
			TrueX:      netsim.RoutineDelays(g, rng),
		}
		res, err := core.ChosenVictim(sc, []graph.LinkID{victim})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			continue
		}
		det, err := detect.New(sys, 0)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := det.Inspect(res.YObserved)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Detected {
			t.Errorf("seed %d: imperfect-cut attack undetected (residual %g)", seed, rep.ResidualNorm)
		}
		verified++
	}
	if verified < 2 {
		t.Skipf("only %d feasible imperfect-cut attacks found in the seed range", verified)
	}
}
