package experiment

import (
	"strings"
	"testing"
)

func TestLossStudyEndToEnd(t *testing.T) {
	r, err := LossStudy(LossStudyConfig{Seed: 1})
	if err != nil {
		t.Fatalf("LossStudy: %v", err)
	}
	// Clean tomography should track delivery ratios within sampling
	// noise (3000 probes ⇒ ratio noise ≲ 1%; least squares amplifies it
	// somewhat across 23 paths/10 links).
	if r.CleanMaxRatioErr > 0.05 {
		t.Errorf("clean max ratio error %.4f too large", r.CleanMaxRatioErr)
	}
	if !r.AttackFeasible {
		t.Fatal("grey-hole attack infeasible on Fig1")
	}
	if !r.VictimAbnormal {
		t.Errorf("victim estimated ratio %.3f not classified abnormal", r.VictimEstimatedRatio)
	}
	// The victim's real delivery never changed.
	if r.VictimTrueRatio < 0.99 {
		t.Errorf("victim true ratio %.3f outside draw range", r.VictimTrueRatio)
	}
	if r.VictimEstimatedRatio > 0.70 {
		t.Errorf("estimated victim ratio %.3f above abnormal bar 0.70", r.VictimEstimatedRatio)
	}
	if !r.AttackersNormal {
		t.Error("attacker links not all normal in loss domain")
	}
	// Link 10 is imperfectly cut, so the sampled-measurement detector
	// should still catch the manipulation.
	if !r.Detected {
		t.Error("imperfect-cut grey-hole attack undetected")
	}
	if r.Alpha <= 0 {
		t.Errorf("alpha = %g", r.Alpha)
	}
	if !strings.Contains(r.String(), "delivery ratio") {
		t.Error("String output malformed")
	}
}

func TestLossStudyDeterministic(t *testing.T) {
	a, err := LossStudy(LossStudyConfig{Seed: 2, ProbesPerPath: 1000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := LossStudy(LossStudyConfig{Seed: 2, ProbesPerPath: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if a.VictimEstimatedRatio != b.VictimEstimatedRatio || a.Alpha != b.Alpha {
		t.Error("LossStudy not deterministic for equal seeds")
	}
}
