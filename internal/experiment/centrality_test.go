package experiment

import (
	"strings"
	"testing"
)

func TestCentralityStudy(t *testing.T) {
	r, err := CentralityStudy(CentralityStudyConfig{Kind: Wireless, Seed: 1, Trials: 12})
	if err != nil {
		t.Fatalf("CentralityStudy: %v", err)
	}
	for _, arm := range []CentralityArm{r.Uniform, r.Central} {
		if arm.SuccessRate < 0 || arm.SuccessRate > 1 {
			t.Errorf("central=%v: success %g", arm.Central, arm.SuccessRate)
		}
		if arm.MeanControlledPaths < 0 {
			t.Errorf("central=%v: controlled paths %g", arm.Central, arm.MeanControlledPaths)
		}
	}
	// High-betweenness attackers must control at least as many paths on
	// average — that is what betweenness measures.
	if r.Central.MeanControlledPaths < r.Uniform.MeanControlledPaths {
		t.Errorf("central attackers control fewer paths (%.1f) than uniform (%.1f)",
			r.Central.MeanControlledPaths, r.Uniform.MeanControlledPaths)
	}
	if !strings.Contains(r.String(), "betweenness") {
		t.Error("String output malformed")
	}
}
