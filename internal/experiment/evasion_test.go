package experiment

import (
	"strings"
	"testing"
)

func TestEvasionStudy(t *testing.T) {
	r, err := EvasionStudy(EvasionStudyConfig{Seed: 1})
	if err != nil {
		t.Fatalf("EvasionStudy: %v", err)
	}
	if len(r.Points) == 0 {
		t.Fatal("no sweep points")
	}
	if r.PlainDamage <= 0 {
		t.Fatal("no baseline damage")
	}
	prev := -1.0
	anyFeasible := false
	for _, p := range r.Points {
		if !p.Feasible {
			continue
		}
		anyFeasible = true
		if p.Residual > p.Alpha+1e-6 {
			t.Errorf("α=%g: residual %g over budget", p.Alpha, p.Residual)
		}
		if p.Damage < prev-1e-6 {
			t.Errorf("α=%g: damage %g below smaller budget's %g (should be monotone)", p.Alpha, p.Damage, prev)
		}
		prev = p.Damage
		if p.Damage > r.PlainDamage+1e-6 {
			t.Errorf("α=%g: evasive damage %g beats unconstrained %g", p.Alpha, p.Damage, r.PlainDamage)
		}
	}
	if !anyFeasible {
		t.Error("no budget was feasible")
	}
	if !strings.Contains(r.String(), "Evasion study") {
		t.Error("String output malformed")
	}
}
