package experiment

import (
	"reflect"
	"sync"
	"testing"
)

// The worker-count-invariance contract: every Monte Carlo runner must
// produce bit-identical results whether its trials run on one worker or
// eight. Each case runs a small configuration both ways and deep-equals
// the structured results.
func TestRunnersWorkerCountInvariant(t *testing.T) {
	cases := []struct {
		name string
		run  func(parallel int) (any, error)
	}{
		{"fig7-wireless", func(p int) (any, error) {
			return Fig7(Fig7Config{Kind: Wireless, Seed: 1, Trials: 12, Parallel: p})
		}},
		{"fig8-wireless", func(p int) (any, error) {
			return Fig8(Fig8Config{Kind: Wireless, Seed: 1, Trials: 3, Parallel: p})
		}},
		{"fig9", func(p int) (any, error) {
			return Fig9(Fig9Config{Seed: 1, Trials: 2, Parallel: p})
		}},
		{"centrality", func(p int) (any, error) {
			return CentralityStudy(CentralityStudyConfig{Kind: Wireless, Seed: 1, Trials: 4, Parallel: p})
		}},
		{"evasion", func(p int) (any, error) {
			return EvasionStudy(EvasionStudyConfig{Seed: 1, Alphas: []float64{500, 2000}, Parallel: p})
		}},
		{"latency", func(p int) (any, error) {
			return LatencyStudy(LatencyStudyConfig{Seed: 1, Trials: 2, Parallel: p})
		}},
		{"loss", func(p int) (any, error) {
			return LossStudy(LossStudyConfig{Seed: 1, ProbesPerPath: 500, Parallel: p})
		}},
		{"placement", func(p int) (any, error) {
			return PlacementStudy(PlacementStudyConfig{Seed: 1, Trials: 4, Parallel: p})
		}},
		{"roc", func(p int) (any, error) {
			return RocStudy(RocStudyConfig{Seed: 1, Rounds: 6, Parallel: p})
		}},
		{"matrix", func(p int) (any, error) {
			return DetectorMatrix(DetectorMatrixConfig{Seed: 1, Trials: 2, Parallel: p})
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			seq, err := tc.run(1)
			if err != nil {
				t.Fatalf("parallel=1: %v", err)
			}
			par, err := tc.run(8)
			if err != nil {
				t.Fatalf("parallel=8: %v", err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("results differ between 1 and 8 workers:\nseq: %+v\npar: %+v", seq, par)
			}
		})
	}
}

// Distinct runners must be safe to run concurrently — they share no
// mutable state. Meaningful under -race (scripts/check.sh runs it).
func TestRunnersConcurrently(t *testing.T) {
	runners := []func() error{
		func() error {
			_, err := Fig7(Fig7Config{Kind: Wireless, Seed: 2, Trials: 6, Parallel: 4})
			return err
		},
		func() error {
			_, err := Fig9(Fig9Config{Seed: 2, Trials: 2, Parallel: 4})
			return err
		},
		func() error {
			_, err := EvasionStudy(EvasionStudyConfig{Seed: 2, Alphas: []float64{1000}, Parallel: 4})
			return err
		},
		func() error {
			_, err := RocStudy(RocStudyConfig{Seed: 2, Rounds: 4, Parallel: 4})
			return err
		},
	}
	var wg sync.WaitGroup
	errs := make([]error, len(runners))
	for i, fn := range runners {
		wg.Add(1)
		go func(i int, fn func() error) {
			defer wg.Done()
			errs[i] = fn()
		}(i, fn)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("runner %d: %v", i, err)
		}
	}
}
