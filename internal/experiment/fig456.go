package experiment

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/tomo"
)

// Fig4Result reproduces Fig. 4: chosen-victim scapegoating of link 10
// (which {B, C} do not perfectly cut) on the Fig. 1 network.
type Fig4Result struct {
	Links        LinkSeries `json:"links"`
	Feasible     bool       `json:"feasible"`
	Damage       float64    `json:"damage"`
	AvgPathDelay float64    `json:"avg_path_delay"`
	// VictimAbnormal and AttackersNormal summarize the attack goals.
	VictimAbnormal  bool `json:"victim_abnormal"`
	AttackersNormal bool `json:"attackers_normal"`
}

// Fig4 runs the chosen-victim experiment of Fig. 4.
func Fig4(seed int64) (*Fig4Result, error) {
	env, err := NewFig1Env(seed)
	if err != nil {
		return nil, err
	}
	victim := env.Topo.PaperLink[10]
	// The paper's Fig. 4 shows a single spike at the victim; confine
	// third links so no innocent side-effect link crosses b_u.
	env.Scenario.ConfineOthers = true
	res, err := core.ChosenVictim(env.Scenario, []graph.LinkID{victim})
	if err != nil {
		return nil, fmt.Errorf("experiment: fig4: %w", err)
	}
	out := &Fig4Result{Feasible: res.Feasible}
	if !res.Feasible {
		return out, nil
	}
	out.Links = newLinkSeries(env, res.XHat, res.States)
	out.Damage = res.Damage
	out.AvgPathDelay = res.AvgPathMetric
	out.VictimAbnormal = res.States[victim] == tomo.Abnormal
	out.AttackersNormal = attackersAllNormal(env, res)
	return out, nil
}

// Fig5Result reproduces Fig. 5: maximum-damage scapegoating on the
// Fig. 1 network. In the paper links 1 and 9 end up abnormal with the
// highest average end-to-end delay of all attacks.
type Fig5Result struct {
	Links         LinkSeries `json:"links"`
	Feasible      bool       `json:"feasible"`
	Damage        float64    `json:"damage"`
	AvgPathDelay  float64    `json:"avg_path_delay"`
	VictimNumbers []int      `json:"victim_numbers"` // paper link numbers of the found victims
	// AbnormalNumbers are all links classified abnormal — the paper's
	// Fig. 5 shows two (victim plus side effect).
	AbnormalNumbers []int `json:"abnormal_numbers"`
	AttackersNormal bool  `json:"attackers_normal"`
}

// Fig5 runs the maximum-damage experiment of Fig. 5.
func Fig5(seed int64) (*Fig5Result, error) {
	env, err := NewFig1Env(seed)
	if err != nil {
		return nil, err
	}
	res, err := core.MaxDamage(env.Scenario, core.MaxDamageOptions{MaxVictims: 2})
	if err != nil {
		return nil, fmt.Errorf("experiment: fig5: %w", err)
	}
	out := &Fig5Result{Feasible: res.Feasible}
	if !res.Feasible {
		return out, nil
	}
	out.Links = newLinkSeries(env, res.XHat, res.States)
	out.Damage = res.Damage
	out.AvgPathDelay = res.AvgPathMetric
	out.AttackersNormal = attackersAllNormal(env, res)
	for _, v := range res.Victims {
		out.VictimNumbers = append(out.VictimNumbers, paperNumber(env, v))
	}
	for num := 1; num <= 10; num++ {
		if out.Links.State[num] == tomo.Abnormal {
			out.AbnormalNumbers = append(out.AbnormalNumbers, num)
		}
	}
	return out, nil
}

// Fig6Result reproduces Fig. 6: obfuscation on the Fig. 1 network —
// every manipulated link lands in the uncertain band.
type Fig6Result struct {
	Links        LinkSeries `json:"links"`
	Feasible     bool       `json:"feasible"`
	Damage       float64    `json:"damage"`
	AvgPathDelay float64    `json:"avg_path_delay"`
	// UncertainCount is how many of the 10 links estimate uncertain.
	UncertainCount int `json:"uncertain_count"`
	// AllTargetsUncertain reports whether every link in L_s ∪ L_m is
	// uncertain (Eq. 10).
	AllTargetsUncertain bool `json:"all_targets_uncertain"`
}

// Fig6 runs the obfuscation experiment of Fig. 6.
func Fig6(seed int64) (*Fig6Result, error) {
	env, err := NewFig1Env(seed)
	if err != nil {
		return nil, err
	}
	res, err := core.Obfuscate(env.Scenario, core.ObfuscationOptions{MinVictims: 1})
	if err != nil {
		return nil, fmt.Errorf("experiment: fig6: %w", err)
	}
	out := &Fig6Result{Feasible: res.Feasible}
	if !res.Feasible {
		return out, nil
	}
	out.Links = newLinkSeries(env, res.XHat, res.States)
	out.Damage = res.Damage
	out.AvgPathDelay = res.AvgPathMetric
	for num := 1; num <= 10; num++ {
		if out.Links.State[num] == tomo.Uncertain {
			out.UncertainCount++
		}
	}
	out.AllTargetsUncertain = true
	links, err := env.Scenario.AttackerLinks()
	if err != nil {
		return nil, err
	}
	for l := range links {
		if res.States[l] != tomo.Uncertain {
			out.AllTargetsUncertain = false
		}
	}
	for _, l := range res.Victims {
		if res.States[l] != tomo.Uncertain {
			out.AllTargetsUncertain = false
		}
	}
	return out, nil
}

func attackersAllNormal(env *Fig1Env, res *core.Result) bool {
	links, err := env.Scenario.AttackerLinks()
	if err != nil {
		return false
	}
	for l := range links {
		if res.States[l] != tomo.Normal {
			return false
		}
	}
	return true
}

func paperNumber(env *Fig1Env, id graph.LinkID) int {
	for num := 1; num <= 10; num++ {
		if env.Topo.PaperLink[num] == id {
			return num
		}
	}
	return -1
}

// RenderLinkSeries renders a Fig. 4/5/6-style bar table: link number,
// estimated delay, state.
func RenderLinkSeries(title string, s LinkSeries) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-6s %12s  %s\n", "link", "est. delay", "state")
	for num := 1; num <= 10; num++ {
		fmt.Fprintf(&b, "%-6d %9.2f ms  %s\n", num, s.Estimated[num], s.State[num])
	}
	return b.String()
}

// String renders the Fig. 4 result as the figure's data table.
func (r *Fig4Result) String() string {
	if !r.Feasible {
		return "Fig. 4 chosen-victim: INFEASIBLE\n"
	}
	return RenderLinkSeries("Fig. 4 chosen-victim scapegoating of link 10", r.Links) +
		fmt.Sprintf("damage=%.1f ms  avg end-to-end delay=%.2f ms  victim abnormal=%v  attackers normal=%v\n",
			r.Damage, r.AvgPathDelay, r.VictimAbnormal, r.AttackersNormal)
}

// String renders the Fig. 5 result.
func (r *Fig5Result) String() string {
	if !r.Feasible {
		return "Fig. 5 maximum-damage: INFEASIBLE\n"
	}
	return RenderLinkSeries("Fig. 5 maximum-damage scapegoating", r.Links) +
		fmt.Sprintf("victims=%v  abnormal links=%v  damage=%.1f ms  avg end-to-end delay=%.2f ms  attackers normal=%v\n",
			r.VictimNumbers, r.AbnormalNumbers, r.Damage, r.AvgPathDelay, r.AttackersNormal)
}

// String renders the Fig. 6 result.
func (r *Fig6Result) String() string {
	if !r.Feasible {
		return "Fig. 6 obfuscation: INFEASIBLE\n"
	}
	return RenderLinkSeries("Fig. 6 obfuscation", r.Links) +
		fmt.Sprintf("uncertain links=%d/10  all targets uncertain=%v  damage=%.1f ms  avg end-to-end delay=%.2f ms\n",
			r.UncertainCount, r.AllTargetsUncertain, r.Damage, r.AvgPathDelay)
}
