package experiment

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mc"
	"repro/internal/netsim"
	"repro/internal/tomo"
)

// CentralityStudyConfig parameterizes the attacker-placement study.
type CentralityStudyConfig struct {
	// Kind is the topology family.
	Kind NetworkKind
	// Seed drives topology, placement, and trials.
	Seed int64
	// Trials per arm (default 30).
	Trials int
	// TopK is the size of the high-centrality candidate pool
	// (default 10).
	TopK int
	// Parallel is the trial worker count (0 = GOMAXPROCS); it never
	// changes the result.
	Parallel int
	// Progress, when non-nil, is called after each completed trial.
	Progress mc.Progress
}

func (c CentralityStudyConfig) trials() int {
	if c.Trials <= 0 {
		return 30
	}
	return c.Trials
}

func (c CentralityStudyConfig) topK() int {
	if c.TopK <= 0 {
		return 10
	}
	return c.TopK
}

// CentralityArm is one attacker-placement policy's outcome.
type CentralityArm struct {
	// Central marks the high-betweenness pool.
	Central bool `json:"central"`
	// SuccessRate is the single-attacker max-damage success rate.
	SuccessRate float64 `json:"success_rate"`
	// MeanControlledPaths is the average number of measurement paths
	// the attacker could manipulate.
	MeanControlledPaths float64 `json:"mean_controlled_paths"`
	// MeanDamage averages ‖m‖₁ over successful attacks.
	MeanDamage float64 `json:"mean_damage"`
}

// CentralityStudyResult compares single attackers drawn uniformly at
// random against attackers drawn from the top-betweenness nodes. It
// makes the paper's implicit threat model quantitative: WHERE a
// compromised node sits determines how much of the measurement fabric
// it touches — the flip side of the presence-ratio discussion in
// Section VI.
type CentralityStudyResult struct {
	Kind    NetworkKind   `json:"kind"`
	Uniform CentralityArm `json:"uniform"`
	Central CentralityArm `json:"central"`
}

// CentralityStudy runs the comparison.
func CentralityStudy(cfg CentralityStudyConfig) (*CentralityStudyResult, error) {
	env, err := NewEnv(cfg.Kind, cfg.Seed)
	if err != nil {
		return nil, err
	}
	topNodes := graph.TopKByCentrality(env.G, cfg.topK())
	out := &CentralityStudyResult{Kind: cfg.Kind}
	type centralityTrial struct {
		controlled float64
		feasible   bool
		damage     float64
	}
	// Both arms split the same base seed, so they face the same per-trial
	// delay draws and differ only in the attacker pool.
	trialSeed := cfg.Seed + 6000
	for _, central := range []bool{false, true} {
		central := central
		results, err := mc.Run(cfg.trials(), mc.Options{Workers: cfg.Parallel, Progress: cfg.Progress},
			func(trial int) (centralityTrial, error) {
				rng := mc.RNG(trialSeed, trial)
				var attacker graph.NodeID
				if central {
					attacker = topNodes[rng.Intn(len(topNodes))]
				} else {
					attacker = graph.NodeID(rng.Intn(env.G.NumNodes()))
				}
				sc := &core.Scenario{
					Sys:        env.Sys,
					Thresholds: tomo.DefaultThresholds(),
					Attackers:  []graph.NodeID{attacker},
					TrueX:      netsim.RoutineDelays(env.G, rng),
				}
				paths, err := sc.ControlledPaths()
				if err != nil {
					return centralityTrial{}, err
				}
				r := centralityTrial{controlled: float64(len(paths))}
				res, err := core.MaxDamage(sc, core.MaxDamageOptions{MaxVictims: 1, FirstFeasible: true})
				if err != nil {
					return centralityTrial{}, err
				}
				if res.Feasible {
					r.feasible = true
					r.damage = res.Damage
				}
				return r, nil
			})
		if err != nil {
			return nil, err
		}
		arm := CentralityArm{Central: central}
		var controlled, damage float64
		successes := 0
		for _, r := range results {
			controlled += r.controlled
			if r.feasible {
				successes++
				damage += r.damage
			}
		}
		arm.SuccessRate = float64(successes) / float64(cfg.trials())
		arm.MeanControlledPaths = controlled / float64(cfg.trials())
		if successes > 0 {
			arm.MeanDamage = damage / float64(successes)
		}
		if central {
			out.Central = arm
		} else {
			out.Uniform = arm
		}
	}
	return out, nil
}

// String renders the comparison.
func (r *CentralityStudyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Attacker-placement (betweenness) study, %v\n", r.Kind)
	fmt.Fprintf(&b, "%-10s %14s %18s %14s\n", "attacker", "success rate", "controlled paths", "mean damage")
	for _, arm := range []CentralityArm{r.Uniform, r.Central} {
		name := "uniform"
		if arm.Central {
			name = "central"
		}
		fmt.Fprintf(&b, "%-10s %13.1f%% %18.1f %13.0f\n",
			name, 100*arm.SuccessRate, arm.MeanControlledPaths, arm.MeanDamage)
	}
	return b.String()
}
