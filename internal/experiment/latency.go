package experiment

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mc"
	"repro/internal/netsim"
)

// LatencyPoint is one point of the detection-latency curve.
type LatencyPoint struct {
	// Budget is the evader's residual budget (fraction of α times α).
	Budget float64 `json:"budget"`
	// Feasible reports whether an attack fits under the budget at all.
	Feasible bool `json:"feasible"`
	// Damage is the per-round damage of the evasive attack.
	Damage float64 `json:"damage"`
	// MeanRounds is the mean CUSUM detection delay after onset
	// (−1 when never detected within the horizon).
	MeanRounds float64 `json:"mean_rounds"`
	// Detected counts trials where CUSUM alarmed within the horizon.
	Detected int `json:"detected"`
	// Trials is the trial count.
	Trials int `json:"trials"`
}

// LatencyStudyResult sweeps the evader's residual budget and measures
// how long the sequential detector takes to catch the attack after
// onset. It quantifies the attacker's real trade-off once the defender
// runs CUSUM: a smaller budget means less damage AND is still caught,
// only later.
type LatencyStudyResult struct {
	Alpha  float64        `json:"alpha"`
	Points []LatencyPoint `json:"points"`
}

// LatencyStudyConfig parameterizes the sweep.
type LatencyStudyConfig struct {
	// Seed drives metric draws and noise.
	Seed int64
	// Trials per budget (default 10).
	Trials int
	// Alpha is the one-shot threshold the evader hides under
	// (default 3000 ms — large enough that evasive attacks on the
	// Fig. 1 network are feasible).
	Alpha float64
	// Horizon is the number of post-onset rounds to wait (default 40).
	Horizon int
	// Parallel is the trial worker count (0 = GOMAXPROCS); it never
	// changes the result.
	Parallel int
	// Progress, when non-nil, is called after each completed trial.
	Progress mc.Progress
}

func (c LatencyStudyConfig) trials() int {
	if c.Trials <= 0 {
		return 10
	}
	return c.Trials
}

func (c LatencyStudyConfig) alpha() float64 {
	if c.Alpha <= 0 {
		return 3000
	}
	return c.Alpha
}

func (c LatencyStudyConfig) horizon() int {
	if c.Horizon <= 0 {
		return 40
	}
	return c.Horizon
}

// LatencyStudy runs the sweep on the Fig. 1 network with the α-evasive
// chosen-victim attack on link 10.
func LatencyStudy(cfg LatencyStudyConfig) (*LatencyStudyResult, error) {
	alpha := cfg.alpha()
	out := &LatencyStudyResult{Alpha: alpha}
	const onset = 3
	type latencyTrial struct {
		feasible bool
		damage   float64
		detected bool
		rounds   float64
	}
	trialSeed := cfg.Seed + 7000
	fracs := []float64{0.3, 0.5, 0.7, 0.9}
	for f, frac := range fracs {
		f, frac := f, frac
		results, err := mc.Run(cfg.trials(), mc.Options{Workers: cfg.Parallel, Progress: cfg.Progress},
			func(trial int) (latencyTrial, error) {
				env, err := NewFig1Env(cfg.Seed + int64(trial))
				if err != nil {
					return latencyTrial{}, err
				}
				sc := env.Scenario
				sc.EvadeAlpha = frac * alpha
				res, err := core.ChosenVictim(sc, []graph.LinkID{env.Topo.PaperLink[10]})
				if err != nil {
					return latencyTrial{}, fmt.Errorf("experiment: latency trial %d: %w", trial, err)
				}
				if !res.Feasible {
					return latencyTrial{}, nil
				}
				r := latencyTrial{feasible: true, damage: res.Damage}
				camp, err := campaign.Run(campaign.Config{
					Sys: env.Sys, TrueX: sc.TrueX,
					Rounds: onset + cfg.horizon(),
					Jitter: 1, ProbesPerPath: 3,
					RNG: rand.New(rand.NewSource(mc.Split(trialSeed, f*cfg.trials()+trial))),
					Plan: &netsim.AttackPlan{
						Attackers:  map[graph.NodeID]bool{env.Topo.B: true, env.Topo.C: true},
						ExtraDelay: res.M,
					},
					AttackFrom: onset,
					Alpha:      alpha,
					Drift:      0.15 * alpha,
					Ceiling:    2 * alpha,
				})
				if err != nil {
					return latencyTrial{}, fmt.Errorf("experiment: latency trial %d: %w", trial, err)
				}
				if camp.FirstCusumAlarm >= onset {
					r.detected = true
					r.rounds = float64(camp.FirstCusumAlarm - onset)
				}
				return r, nil
			})
		if err != nil {
			return nil, err
		}
		pt := LatencyPoint{Budget: frac * alpha, Trials: cfg.trials()}
		var totalRounds float64
		for _, r := range results {
			if !r.feasible {
				continue
			}
			pt.Feasible = true
			pt.Damage = r.damage
			if r.detected {
				pt.Detected++
				totalRounds += r.rounds
			}
		}
		if pt.Detected > 0 {
			pt.MeanRounds = totalRounds / float64(pt.Detected)
		} else {
			pt.MeanRounds = -1
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// String renders the latency curve.
func (r *LatencyStudyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CUSUM detection latency vs evasion budget (α = %.0f ms)\n", r.Alpha)
	fmt.Fprintf(&b, "%-14s %10s %14s %12s %14s\n", "budget (ms)", "feasible", "damage/round", "detected", "mean rounds")
	for _, p := range r.Points {
		mr := "—"
		if p.MeanRounds >= 0 {
			mr = fmt.Sprintf("%.1f", p.MeanRounds)
		}
		fmt.Fprintf(&b, "%-14.0f %10v %14.0f %9d/%-2d %14s\n",
			p.Budget, p.Feasible, p.Damage, p.Detected, p.Trials, mr)
	}
	return b.String()
}
