package experiment

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mc"
	"repro/internal/netsim"
	"repro/internal/tomo"
	"repro/internal/topo"
)

// NetworkKind selects the evaluation topology family of Section V-C.
type NetworkKind int

// Topology families used by Figs. 7–9.
const (
	// Wireline is the synthetic Rocketfuel-AS1221-like ISP map.
	Wireline NetworkKind = iota + 1
	// Wireless is the 100-node λ=5 random geometric graph.
	Wireless
)

// String names the network kind.
func (k NetworkKind) String() string {
	switch k {
	case Wireline:
		return "wireline"
	case Wireless:
		return "wireless"
	default:
		return fmt.Sprintf("NetworkKind(%d)", int(k))
	}
}

// Env is an assembled large-network tomography environment.
type Env struct {
	Kind     NetworkKind
	G        *graph.Graph
	Monitors []graph.NodeID
	Sys      *tomo.System
}

// NewEnv builds a monitored, identifiable tomography system on the
// requested topology family. Monitor placement follows the random
// minimum-placement-style growth of tomo.PlaceMonitors.
func NewEnv(kind NetworkKind, seed int64) (*Env, error) {
	var (
		g   *graph.Graph
		err error
	)
	switch kind {
	case Wireline:
		g, err = topo.ISP(seed)
	case Wireless:
		g, _, err = topo.Wireless(seed)
	default:
		return nil, fmt.Errorf("experiment: unknown network kind %d", int(kind))
	}
	if err != nil {
		return nil, fmt.Errorf("experiment: %v topology: %w", kind, err)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	monitors, paths, rank, err := tomo.PlaceMonitors(g, rng, tomo.PlaceOptions{
		Initial: 8,
		Select:  tomo.SelectOptions{PerPair: 6},
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: %v placement: %w", kind, err)
	}
	if rank != g.NumLinks() {
		return nil, fmt.Errorf("experiment: %v placement reached rank %d of %d", kind, rank, g.NumLinks())
	}
	sys, err := tomo.NewSystem(g, paths)
	if err != nil {
		return nil, fmt.Errorf("experiment: %v system: %w", kind, err)
	}
	return &Env{Kind: kind, G: g, Monitors: monitors, Sys: sys}, nil
}

// Fig7Config parameterizes the success-probability sweep.
type Fig7Config struct {
	// Kind is the topology family.
	Kind NetworkKind
	// Seed drives topology, placement, and trials.
	Seed int64
	// Trials is the number of random attack attempts (default 200).
	Trials int
	// MaxAttackers bounds the attacker-set size drawn per trial
	// (uniform on 1..MaxAttackers; default 4).
	MaxAttackers int
	// Parallel is the trial worker count (0 = GOMAXPROCS); it never
	// changes the result.
	Parallel int
	// Progress, when non-nil, is called after each completed trial.
	Progress mc.Progress
}

func (c Fig7Config) trials() int {
	if c.Trials <= 0 {
		return 200
	}
	return c.Trials
}

func (c Fig7Config) maxAttackers() int {
	if c.MaxAttackers <= 0 {
		return 4
	}
	return c.MaxAttackers
}

// Fig7Bin is one point of the Fig. 7 curve: trials whose attack presence
// ratio fell into [Lo, Hi) and the fraction that succeeded.
type Fig7Bin struct {
	Lo          float64 `json:"lo"`
	Hi          float64 `json:"hi"`
	Trials      int     `json:"trials"`
	Successes   int     `json:"successes"`
	SuccessRate float64 `json:"success_rate"`
}

// Fig7Result is the success-probability-vs-presence-ratio curve.
type Fig7Result struct {
	Kind NetworkKind `json:"kind"`
	Bins []Fig7Bin   `json:"bins"`
	// Monotone reports whether the success rate is non-decreasing
	// across populated bins — Theorem 2's prediction.
	Monotone bool `json:"monotone"`
}

// fig7Trial is one trial's outcome, aggregated in trial order.
type fig7Trial struct {
	ok      bool
	bin     int
	success bool
}

// Fig7 sweeps random chosen-victim attacks and bins success by attack
// presence ratio, reproducing Fig. 7 for one topology family. Trials
// run through the shared mc pool; each draws its own PRNG from
// (Seed, trial), so the worker count never changes the curve.
func Fig7(cfg Fig7Config) (*Fig7Result, error) {
	env, err := NewEnv(cfg.Kind, cfg.Seed)
	if err != nil {
		return nil, err
	}
	const nBins = 10
	trialSeed := cfg.Seed + 1000
	results, err := mc.Run(cfg.trials(), mc.Options{Workers: cfg.Parallel, Progress: cfg.Progress},
		func(trial int) (fig7Trial, error) {
			rng := mc.RNG(trialSeed, trial)
			victim, attackers, ok := sampleVictimAndAttackers(env, cfg.maxAttackers(), rng)
			if !ok {
				return fig7Trial{}, nil
			}
			ratio, err := core.PresenceRatio(env.Sys, attackers, []graph.LinkID{victim})
			if err != nil {
				return fig7Trial{}, fmt.Errorf("experiment: fig7 trial %d: %w", trial, err)
			}
			sc := &core.Scenario{
				Sys:        env.Sys,
				Thresholds: tomo.DefaultThresholds(),
				Attackers:  attackers,
				TrueX:      netsim.RoutineDelays(env.G, rng),
				// Scapegoating should leave the victim as the unambiguous
				// root cause; without confinement, least squares lets far-
				// away manipulation smear onto the victim's estimate and
				// low-presence attacks "succeed" by making half the network
				// look broken.
				ConfineOthers: true,
			}
			res, err := core.ChosenVictim(sc, []graph.LinkID{victim})
			if err != nil {
				return fig7Trial{}, fmt.Errorf("experiment: fig7 trial %d: %w", trial, err)
			}
			b := int(ratio * nBins)
			if b >= nBins {
				b = nBins - 1
			}
			return fig7Trial{ok: true, bin: b, success: res.Feasible}, nil
		})
	if err != nil {
		return nil, err
	}
	bins := make([]Fig7Bin, nBins)
	for b := range bins {
		bins[b].Lo = float64(b) / nBins
		bins[b].Hi = float64(b+1) / nBins
	}
	for _, t := range results {
		if !t.ok {
			continue
		}
		bins[t.bin].Trials++
		if t.success {
			bins[t.bin].Successes++
		}
	}
	out := &Fig7Result{Kind: cfg.Kind, Bins: bins, Monotone: true}
	prev := -1.0
	for b := range bins {
		if bins[b].Trials > 0 {
			bins[b].SuccessRate = float64(bins[b].Successes) / float64(bins[b].Trials)
			if bins[b].SuccessRate < prev {
				out.Monotone = false
			}
			prev = bins[b].SuccessRate
		}
	}
	return out, nil
}

// sampleVictimAndAttackers draws one Fig. 7 trial: a random victim link,
// then an attacker set stratified to cover the presence-ratio axis —
// purely random attackers almost never sit on a specific victim's
// measurement paths, which would leave the paper's 50–100% ratio range
// unpopulated. Half the trials draw attackers from nodes on the victim's
// paths (high ratios), the rest mix path nodes with arbitrary ones.
// Attackers incident to the victim are excluded (Eq. 7 demands
// L_m ∩ L_s = ∅).
func sampleVictimAndAttackers(env *Env, maxAttackers int, rng *rand.Rand) (graph.LinkID, []graph.NodeID, bool) {
	victim := graph.LinkID(rng.Intn(env.G.NumLinks()))
	vl, err := env.G.Link(victim)
	if err != nil {
		return 0, nil, false
	}
	// Nodes on the victim's measurement paths, excluding its endpoints.
	onPaths := make(map[graph.NodeID]bool)
	for _, pi := range env.Sys.PathsWithLink(victim) {
		for _, v := range env.Sys.Paths()[pi].Nodes {
			if v != vl.A && v != vl.B {
				onPaths[v] = true
			}
		}
	}
	if len(onPaths) == 0 {
		return 0, nil, false
	}
	pathNodes := make([]graph.NodeID, 0, len(onPaths))
	for _, v := range env.G.Nodes() { // deterministic order
		if onPaths[v] {
			pathNodes = append(pathNodes, v)
		}
	}
	k := 1 + rng.Intn(maxAttackers)
	seen := make(map[graph.NodeID]bool)
	var attackers []graph.NodeID
	add := func(v graph.NodeID) {
		if !seen[v] && v != vl.A && v != vl.B {
			seen[v] = true
			attackers = append(attackers, v)
		}
	}
	fromPaths := k
	if rng.Intn(2) == 0 {
		fromPaths = rng.Intn(k + 1) // mixed draw for low/mid ratios
	}
	for i := 0; i < fromPaths*3 && len(attackers) < fromPaths; i++ {
		add(pathNodes[rng.Intn(len(pathNodes))])
	}
	for i := 0; i < k*3 && len(attackers) < k; i++ {
		add(graph.NodeID(rng.Intn(env.G.NumNodes())))
	}
	if len(attackers) == 0 {
		return 0, nil, false
	}
	return victim, attackers, true
}

// String renders the Fig. 7 curve as a table.
func (r *Fig7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7 chosen-victim success probability vs attack presence ratio (%v)\n", r.Kind)
	fmt.Fprintf(&b, "%-14s %8s %10s %12s\n", "ratio bin", "trials", "successes", "success rate")
	for _, bin := range r.Bins {
		if bin.Trials == 0 {
			continue
		}
		fmt.Fprintf(&b, "[%.1f, %.1f)    %8d %10d %11.1f%%\n",
			bin.Lo, bin.Hi, bin.Trials, bin.Successes, 100*bin.SuccessRate)
	}
	fmt.Fprintf(&b, "monotone non-decreasing: %v\n", r.Monotone)
	return b.String()
}
