package experiment

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mc"
)

// EvasionPoint is one point of the damage-vs-threshold trade-off.
type EvasionPoint struct {
	// Alpha is the residual budget (= the operator's detection
	// threshold the attacker must stay under).
	Alpha float64 `json:"alpha"`
	// Feasible reports whether any attack fits under the budget.
	Feasible bool `json:"feasible"`
	// Damage is the maximum damage achievable under the budget.
	Damage float64 `json:"damage"`
	// Residual is the attack's actual ‖Rx̂ − y'‖₁.
	Residual float64 `json:"residual"`
}

// EvasionStudyResult sweeps the α-evasive attack of core.Scenario
// .EvadeAlpha on the imperfectly cut link 10: how much damage can an
// attacker do while staying under a detector tuned to each α? This
// quantifies the security cost of a loose threshold — every ms of alarm
// headroom is attack budget (an extension of Remark 4; see DESIGN.md §7).
type EvasionStudyResult struct {
	Points []EvasionPoint `json:"points"`
	// PlainDamage is the unconstrained (fully detectable) optimum, the
	// α → ∞ asymptote.
	PlainDamage float64 `json:"plain_damage"`
}

// EvasionStudyConfig parameterizes the sweep.
type EvasionStudyConfig struct {
	// Seed drives the Fig. 1 environment.
	Seed int64
	// Alphas are the residual budgets to sweep (default a spread from 50
	// to 10000 ms).
	Alphas []float64
	// Parallel is the per-point worker count (0 = GOMAXPROCS); it never
	// changes the result.
	Parallel int
	// Progress, when non-nil, is called after each completed point.
	Progress mc.Progress
}

func (c EvasionStudyConfig) alphas() []float64 {
	if len(c.Alphas) > 0 {
		return c.Alphas
	}
	return []float64{50, 100, 200, 500, 1000, 2000, 5000, 10000}
}

// EvasionStudy runs the sweep on the Fig. 1 network. Each α point is an
// independent LP solve against the shared environment, so the sweep
// fans out over the trial pool.
func EvasionStudy(cfg EvasionStudyConfig) (*EvasionStudyResult, error) {
	alphas := cfg.alphas()
	env, err := NewFig1Env(cfg.Seed)
	if err != nil {
		return nil, err
	}
	victim := []graph.LinkID{env.Topo.PaperLink[10]}
	plain, err := core.ChosenVictim(env.Scenario, victim)
	if err != nil {
		return nil, err
	}
	if !plain.Feasible {
		return nil, fmt.Errorf("experiment: evasion baseline infeasible")
	}
	points, err := mc.Run(len(alphas), mc.Options{Workers: cfg.Parallel, Progress: cfg.Progress},
		func(i int) (EvasionPoint, error) {
			alpha := alphas[i]
			sc := &core.Scenario{
				Sys:        env.Sys,
				Thresholds: env.Scenario.Thresholds,
				Attackers:  env.Scenario.Attackers,
				TrueX:      env.Scenario.TrueX,
				EvadeAlpha: alpha,
			}
			res, err := core.ChosenVictim(sc, victim)
			if err != nil {
				return EvasionPoint{}, err
			}
			pt := EvasionPoint{Alpha: alpha, Feasible: res.Feasible}
			if res.Feasible {
				pt.Damage = res.Damage
				resid, err := sc.Sys.Residual(res.XHat, res.YObserved)
				if err != nil {
					return EvasionPoint{}, err
				}
				pt.Residual = resid.Norm1()
			}
			return pt, nil
		})
	if err != nil {
		return nil, err
	}
	return &EvasionStudyResult{PlainDamage: plain.Damage, Points: points}, nil
}

// String renders the sweep as a table.
func (r *EvasionStudyResult) String() string {
	var b strings.Builder
	b.WriteString("Evasion study: max damage while staying under the detection threshold α\n")
	b.WriteString("(chosen-victim on the imperfectly cut link 10 of the Fig. 1 network)\n")
	fmt.Fprintf(&b, "%-12s %10s %14s %14s\n", "α (ms)", "feasible", "damage (ms)", "residual (ms)")
	for _, p := range r.Points {
		if p.Feasible {
			fmt.Fprintf(&b, "%-12.0f %10v %14.1f %14.1f\n", p.Alpha, p.Feasible, p.Damage, p.Residual)
		} else {
			fmt.Fprintf(&b, "%-12.0f %10v %14s %14s\n", p.Alpha, p.Feasible, "—", "—")
		}
	}
	fmt.Fprintf(&b, "unconstrained (detectable) damage: %.1f ms\n", r.PlainDamage)
	return b.String()
}
