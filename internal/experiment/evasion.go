package experiment

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
)

// EvasionPoint is one point of the damage-vs-threshold trade-off.
type EvasionPoint struct {
	// Alpha is the residual budget (= the operator's detection
	// threshold the attacker must stay under).
	Alpha float64 `json:"alpha"`
	// Feasible reports whether any attack fits under the budget.
	Feasible bool `json:"feasible"`
	// Damage is the maximum damage achievable under the budget.
	Damage float64 `json:"damage"`
	// Residual is the attack's actual ‖Rx̂ − y'‖₁.
	Residual float64 `json:"residual"`
}

// EvasionStudyResult sweeps the α-evasive attack of core.Scenario
// .EvadeAlpha on the imperfectly cut link 10: how much damage can an
// attacker do while staying under a detector tuned to each α? This
// quantifies the security cost of a loose threshold — every ms of alarm
// headroom is attack budget (an extension of Remark 4; see DESIGN.md §7).
type EvasionStudyResult struct {
	Points []EvasionPoint `json:"points"`
	// PlainDamage is the unconstrained (fully detectable) optimum, the
	// α → ∞ asymptote.
	PlainDamage float64 `json:"plain_damage"`
}

// EvasionStudy runs the sweep on the Fig. 1 network.
func EvasionStudy(seed int64, alphas []float64) (*EvasionStudyResult, error) {
	if len(alphas) == 0 {
		alphas = []float64{50, 100, 200, 500, 1000, 2000, 5000, 10000}
	}
	env, err := NewFig1Env(seed)
	if err != nil {
		return nil, err
	}
	victim := []graph.LinkID{env.Topo.PaperLink[10]}
	plain, err := core.ChosenVictim(env.Scenario, victim)
	if err != nil {
		return nil, err
	}
	if !plain.Feasible {
		return nil, fmt.Errorf("experiment: evasion baseline infeasible")
	}
	out := &EvasionStudyResult{PlainDamage: plain.Damage}
	for _, alpha := range alphas {
		sc := &core.Scenario{
			Sys:        env.Sys,
			Thresholds: env.Scenario.Thresholds,
			Attackers:  env.Scenario.Attackers,
			TrueX:      env.Scenario.TrueX,
			EvadeAlpha: alpha,
		}
		res, err := core.ChosenVictim(sc, victim)
		if err != nil {
			return nil, err
		}
		pt := EvasionPoint{Alpha: alpha, Feasible: res.Feasible}
		if res.Feasible {
			pt.Damage = res.Damage
			resid, err := sc.Sys.Residual(res.XHat, res.YObserved)
			if err != nil {
				return nil, err
			}
			pt.Residual = resid.Norm1()
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// String renders the sweep as a table.
func (r *EvasionStudyResult) String() string {
	var b strings.Builder
	b.WriteString("Evasion study: max damage while staying under the detection threshold α\n")
	b.WriteString("(chosen-victim on the imperfectly cut link 10 of the Fig. 1 network)\n")
	fmt.Fprintf(&b, "%-12s %10s %14s %14s\n", "α (ms)", "feasible", "damage (ms)", "residual (ms)")
	for _, p := range r.Points {
		if p.Feasible {
			fmt.Fprintf(&b, "%-12.0f %10v %14.1f %14.1f\n", p.Alpha, p.Feasible, p.Damage, p.Residual)
		} else {
			fmt.Fprintf(&b, "%-12.0f %10v %14s %14s\n", p.Alpha, p.Feasible, "—", "—")
		}
	}
	fmt.Fprintf(&b, "unconstrained (detectable) damage: %.1f ms\n", r.PlainDamage)
	return b.String()
}
