// Defender-stale-matrix study: what happens when the network churns
// faster than the defender re-learns its routing matrix. Each trial
// runs a multi-epoch flap-chained campaign with an attacker window in
// the middle; the defender then inspects epoch e's measurements with
// the matrix it learned at epoch e−lag. Lag 0 is the promptly
// re-learning defender every other experiment assumes; positive lags
// quantify how routing churn alone degrades the Eq. 23 detector —
// false alarms on clean traffic (the residual now measures the routing
// delta, not the attack) and polluted damage attribution inside the
// window.
package experiment

import (
	"fmt"
	"strings"

	"repro/internal/campaign"
	"repro/internal/detect"
	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/mc"
	"repro/internal/netsim"
	"repro/internal/tomo"
	"repro/internal/topo"
)

// StaleStudyConfig parameterizes the stale-matrix study.
type StaleStudyConfig struct {
	Seed   int64
	Trials int   // default 6
	Lags   []int // defender staleness in epochs (default 0, 1, 2)
	// Epochs is the flap-chain length (default 5); RoundsPerEpoch the
	// measurement rounds per regime (default 6). The attacker window
	// covers the middle epochs [Epochs/2−1, Epochs/2].
	Epochs         int
	RoundsPerEpoch int
	Alpha          float64 // 0 = detect.DefaultAlpha
	// Parallel is the trial worker count (0 = GOMAXPROCS); it never
	// changes the result.
	Parallel int
	// Progress, when non-nil, is called after each completed trial.
	Progress mc.Progress
}

func (c StaleStudyConfig) trials() int {
	if c.Trials <= 0 {
		return 6
	}
	return c.Trials
}

func (c StaleStudyConfig) lags() []int {
	if len(c.Lags) == 0 {
		return []int{0, 1, 2}
	}
	return c.Lags
}

func (c StaleStudyConfig) epochs() int {
	if c.Epochs <= 0 {
		return 5
	}
	return c.Epochs
}

func (c StaleStudyConfig) rounds() int {
	if c.RoundsPerEpoch <= 0 {
		return 6
	}
	return c.RoundsPerEpoch
}

func (c StaleStudyConfig) alpha() float64 {
	if c.Alpha <= 0 {
		return detect.DefaultAlpha
	}
	return c.Alpha
}

// StaleRow aggregates one defender lag across all trials and epochs.
type StaleRow struct {
	Lag int `json:"lag"`
	// Clean/Attack split measurement rounds by whether the attacker
	// window was active when they were taken.
	CleanRounds  int `json:"clean_rounds"`
	CleanAlarms  int `json:"clean_alarms"`
	AttackRounds int `json:"attack_rounds"`
	AttackAlarms int `json:"attack_alarms"`
	// CleanResidual / AttackResidual are mean ‖R·x̂ − y‖₁ under the
	// lagged matrix — the quantitative churn penalty even when it stays
	// under α.
	CleanResidual  float64 `json:"clean_residual_ms"`
	AttackResidual float64 `json:"attack_residual_ms"`
	// MeanDamage is the mean |x̂[victim] − x[victim]| over attacked
	// rounds, as the lagged defender estimates it.
	MeanDamage float64 `json:"mean_damage_ms"`
}

// StaleStudyResult is the per-lag alarm/damage table.
type StaleStudyResult struct {
	Alpha float64    `json:"alpha"`
	Rows  []StaleRow `json:"rows"`
}

// staleTrial is one trial's contribution, already split per lag.
type staleTrial struct {
	rows []StaleRow
}

// StaleStudy runs the defender-stale-matrix experiment on Fig. 1. The
// routing chain is flap-only — the graph, link numbering, and path
// count never change, so a lagged matrix still has compatible
// dimensions; what shifts between epochs is which routes the
// measurements actually took, which is exactly the mismatch the study
// isolates.
func StaleStudy(cfg StaleStudyConfig) (*StaleStudyResult, error) {
	alpha := cfg.alpha()
	lags := cfg.lags()
	nEpochs := cfg.epochs()
	rounds := cfg.rounds()
	atkFrom, atkTo := nEpochs/2-1, nEpochs/2
	if atkFrom < 0 {
		atkFrom = 0
	}

	trials, err := mc.Run(cfg.trials(), mc.Options{Workers: cfg.Parallel, Progress: cfg.Progress},
		func(trial int) (staleTrial, error) {
			return runStaleTrial(cfg.Seed, trial, alpha, lags, nEpochs, rounds, atkFrom, atkTo)
		})
	if err != nil {
		return nil, err
	}
	out := &StaleStudyResult{Alpha: alpha}
	for li, lag := range lags {
		row := StaleRow{Lag: lag}
		var damageSum, cleanResSum, atkResSum float64
		for _, tr := range trials {
			r := tr.rows[li]
			row.CleanRounds += r.CleanRounds
			row.CleanAlarms += r.CleanAlarms
			row.AttackRounds += r.AttackRounds
			row.AttackAlarms += r.AttackAlarms
			damageSum += r.MeanDamage * float64(r.AttackRounds)
			cleanResSum += r.CleanResidual * float64(r.CleanRounds)
			atkResSum += r.AttackResidual * float64(r.AttackRounds)
		}
		if row.CleanRounds > 0 {
			row.CleanResidual = cleanResSum / float64(row.CleanRounds)
		}
		if row.AttackRounds > 0 {
			row.MeanDamage = damageSum / float64(row.AttackRounds)
			row.AttackResidual = atkResSum / float64(row.AttackRounds)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func runStaleTrial(seed int64, trial int, alpha float64, lags []int,
	nEpochs, rounds, atkFrom, atkTo int) (staleTrial, error) {
	f := topo.Fig1()
	// NumLinks+6 target: the chosen-victim LP on link 10 needs ≥15 of
	// Fig. 1's 23 simple paths to be feasible, while stopping short of
	// the exhaustive set keeps unused alternates for the flap chain.
	paths, rank, err := tomo.SelectPaths(f.G, f.Monitors,
		tomo.SelectOptions{Exhaustive: true, TargetPaths: f.G.NumLinks() + 6})
	if err != nil {
		return staleTrial{}, fmt.Errorf("experiment: stale trial %d: %w", trial, err)
	}
	if rank != f.G.NumLinks() {
		return staleTrial{}, fmt.Errorf("experiment: stale trial %d: rank %d", trial, rank)
	}
	base, err := tomo.NewSystem(f.G, paths)
	if err != nil {
		return staleTrial{}, err
	}
	victim := f.PaperLink[10]
	trialSeed := mc.Split(seed, trial)

	// Draw routine traffic until the window is feasible on every
	// window epoch (same redraw discipline as the e2e compiler).
	for draw := 0; draw < 32; draw++ {
		x := netsim.RoutineDelays(f.G, mc.RNG(trialSeed, draw))
		st, err := staleChainOnDraw(f, base, x, trialSeed, alpha, lags, nEpochs, rounds, atkFrom, atkTo, victim)
		if err == campaign.ErrInfeasible {
			continue
		}
		return st, err
	}
	return staleTrial{}, fmt.Errorf("experiment: stale trial %d: window infeasible on 32 draws", trial)
}

func staleChainOnDraw(f *topo.Fig1Topology, base *tomo.System, x la.Vector,
	trialSeed int64, alpha float64, lags []int,
	nEpochs, rounds, atkFrom, atkTo int, victim graph.LinkID) (staleTrial, error) {
	// Build the flap chain: epoch 0 is the base selection, each later
	// epoch reroutes one path of its predecessor.
	systems := make([]*tomo.System, nEpochs)
	systems[0] = base
	for e := 1; e < nEpochs; e++ {
		prev := systems[e-1]
		r, alt, err := campaign.FlapPath(prev, mc.RNG(trialSeed, 1000+e))
		if err != nil {
			return staleTrial{}, fmt.Errorf("experiment: stale flap %d: %w", e, err)
		}
		next := make([]graph.Path, 0, prev.NumPaths())
		next = append(next, prev.Paths()[:r]...)
		next = append(next, prev.Paths()[r+1:]...)
		next = append(next, alt)
		systems[e], err = tomo.NewSystem(f.G, next)
		if err != nil {
			return staleTrial{}, err
		}
	}

	// Compile the window attack per epoch (the attacker is prompt even
	// when the defender is not).
	plans := make([]*netsim.AttackPlan, nEpochs)
	for e := atkFrom; e <= atkTo && e < nEpochs; e++ {
		plan, _, err := campaign.CompileAttack(systems[e], x, &campaign.EpochAttack{
			Attackers: f.Attackers,
			Victims:   []graph.LinkID{victim},
		})
		if err != nil {
			return staleTrial{}, err // ErrInfeasible propagates for redraw
		}
		plans[e] = plan
	}

	// Detectors per epoch, reused across lags.
	dets := make([]*detect.Detector, nEpochs)
	for e := range dets {
		var err error
		dets[e], err = detect.New(systems[e], alpha)
		if err != nil {
			return staleTrial{}, err
		}
	}

	// Simulate the whole chain once, then inspect per lag.
	type obs struct {
		epoch    int
		attacked bool
		y        la.Vector
	}
	var all []obs
	var world *netsim.World
	gi := 0
	for e := 0; e < nEpochs; e++ {
		regime := netsim.Config{
			Graph:         f.G,
			Paths:         systems[e].Paths(),
			LinkDelays:    x,
			Jitter:        1,
			ProbesPerPath: 3,
		}
		var err error
		if world == nil {
			world, err = netsim.NewWorld(regime)
		} else {
			err = world.Swap(regime)
		}
		if err != nil {
			return staleTrial{}, err
		}
		for r := 0; r < rounds; r++ {
			y, err := world.Round(mc.RNG(trialSeed, 2000+gi), plans[e])
			if err != nil {
				return staleTrial{}, err
			}
			all = append(all, obs{epoch: e, attacked: plans[e] != nil, y: y})
			gi++
		}
	}

	st := staleTrial{rows: make([]StaleRow, len(lags))}
	for li, lag := range lags {
		row := &st.rows[li]
		row.Lag = lag
		var damageSum, cleanResSum, atkResSum float64
		for _, o := range all {
			de := o.epoch - lag
			if de < 0 {
				de = 0
			}
			rep, err := dets[de].Inspect(o.y)
			if err != nil {
				return staleTrial{}, err
			}
			if o.attacked {
				row.AttackRounds++
				if rep.Detected {
					row.AttackAlarms++
				}
				atkResSum += rep.ResidualNorm
				d := rep.XHat[victim] - x[victim]
				if d < 0 {
					d = -d
				}
				damageSum += d
			} else {
				row.CleanRounds++
				if rep.Detected {
					row.CleanAlarms++
				}
				cleanResSum += rep.ResidualNorm
			}
		}
		if row.CleanRounds > 0 {
			row.CleanResidual = cleanResSum / float64(row.CleanRounds)
		}
		if row.AttackRounds > 0 {
			row.MeanDamage = damageSum / float64(row.AttackRounds)
			row.AttackResidual = atkResSum / float64(row.AttackRounds)
		}
	}
	return st, nil
}

// String renders the per-lag table.
func (r *StaleStudyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Defender-stale-matrix study (α = %.0f ms, Fig. 1, flap-chained epochs)\n", r.Alpha)
	fmt.Fprintf(&b, "%-4s %14s %15s %12s %12s %14s\n",
		"lag", "clean alarms", "attack alarms", "clean res.", "attack res.", "est. damage")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-4d %8d/%-5d %9d/%-5d %9.1f ms %9.1f ms %11.1f ms\n",
			row.Lag, row.CleanAlarms, row.CleanRounds,
			row.AttackAlarms, row.AttackRounds,
			row.CleanResidual, row.AttackResidual, row.MeanDamage)
	}
	return b.String()
}
