package experiment

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mc"
	"repro/internal/netsim"
)

// AttackMode is a row of the detector matrix.
type AttackMode int

// Attack modes crossed against detectors.
const (
	PlainImperfect   AttackMode = iota + 1 // damage-max LP, imperfect cut
	PlainPerfect                           // damage-max LP, perfect cut
	StealthyPerfect                        // consistent construction, perfect cut
	EvasiveImperfect                       // α-evasive LP, imperfect cut
)

// String names the mode.
func (m AttackMode) String() string {
	switch m {
	case PlainImperfect:
		return "plain/imperfect"
	case PlainPerfect:
		return "plain/perfect"
	case StealthyPerfect:
		return "stealthy/perfect"
	case EvasiveImperfect:
		return "evasive/imperfect"
	default:
		return fmt.Sprintf("AttackMode(%d)", int(m))
	}
}

// MatrixCell is one (attack mode × detector) outcome.
type MatrixCell struct {
	Mode AttackMode `json:"mode"`
	// Feasible trials out of Trials.
	Feasible int `json:"feasible"`
	Trials   int `json:"trials"`
	// OneShot counts trials the Eq. 23 one-shot test caught.
	OneShot int `json:"one_shot"`
	// Cusum counts trials the sequential detector caught within the
	// horizon.
	Cusum int `json:"cusum"`
}

// DetectorMatrixResult is the defense-coverage matrix: which detector
// catches which attack mode. It condenses the repository's whole story
// into one table — the paper's one-shot test covers exactly the plain
// imperfect-cut row; CUSUM extends coverage to evasive attackers;
// nothing covers consistent perfect-cut attacks (Theorem 3 says nothing
// can, within the linear model).
type DetectorMatrixResult struct {
	Alpha float64      `json:"alpha"`
	Cells []MatrixCell `json:"cells"`
}

// DetectorMatrixConfig parameterizes the matrix run.
type DetectorMatrixConfig struct {
	Seed   int64
	Trials int // per mode (default 8)
	Alpha  float64
	// Parallel is the trial worker count (0 = GOMAXPROCS); it never
	// changes the result.
	Parallel int
	// Progress, when non-nil, is called after each completed trial.
	Progress mc.Progress
}

func (c DetectorMatrixConfig) trials() int {
	if c.Trials <= 0 {
		return 8
	}
	return c.Trials
}

func (c DetectorMatrixConfig) alpha() float64 {
	if c.Alpha <= 0 {
		return 3000 // large enough for feasible evasive attacks on Fig. 1
	}
	return c.Alpha
}

// DetectorMatrix runs the coverage matrix on the Fig. 1 network:
// attackers {B, C}, perfect-cut victim link 1, imperfect-cut victim
// link 10.
func DetectorMatrix(cfg DetectorMatrixConfig) (*DetectorMatrixResult, error) {
	alpha := cfg.alpha()
	out := &DetectorMatrixResult{Alpha: alpha}
	type matrixTrial struct {
		feasible bool
		oneShot  bool
		cusum    bool
	}
	trialSeed := cfg.Seed + 8000
	for m, mode := range []AttackMode{PlainImperfect, PlainPerfect, StealthyPerfect, EvasiveImperfect} {
		m, mode := m, mode
		results, err := mc.Run(cfg.trials(), mc.Options{Workers: cfg.Parallel, Progress: cfg.Progress},
			func(trial int) (matrixTrial, error) {
				env, err := NewFig1Env(cfg.Seed + int64(trial))
				if err != nil {
					return matrixTrial{}, err
				}
				sc := env.Scenario
				victim := env.Topo.PaperLink[10]
				switch mode {
				case PlainPerfect:
					victim = env.Topo.PaperLink[1]
				case StealthyPerfect:
					victim = env.Topo.PaperLink[1]
					sc.Stealthy = true
				case EvasiveImperfect:
					sc.EvadeAlpha = 0.9 * alpha
				}
				res, err := core.ChosenVictim(sc, []graph.LinkID{victim})
				if err != nil {
					return matrixTrial{}, fmt.Errorf("experiment: matrix %v trial %d: %w", mode, trial, err)
				}
				if !res.Feasible {
					return matrixTrial{}, nil
				}
				camp, err := campaign.Run(campaign.Config{
					Sys: env.Sys, TrueX: sc.TrueX, Rounds: 12,
					Jitter: 1, ProbesPerPath: 3,
					RNG: rand.New(rand.NewSource(mc.Split(trialSeed, m*cfg.trials()+trial))),
					Plan: &netsim.AttackPlan{
						Attackers:  map[graph.NodeID]bool{env.Topo.B: true, env.Topo.C: true},
						ExtraDelay: res.M,
					},
					AttackFrom: 0,
					Alpha:      alpha,
					Drift:      0.15 * alpha,
					Ceiling:    2 * alpha,
				})
				if err != nil {
					return matrixTrial{}, fmt.Errorf("experiment: matrix %v trial %d: %w", mode, trial, err)
				}
				return matrixTrial{
					feasible: true,
					oneShot:  camp.FirstOneShotAlarm >= 0,
					cusum:    camp.FirstCusumAlarm >= 0,
				}, nil
			})
		if err != nil {
			return nil, err
		}
		cell := MatrixCell{Mode: mode, Trials: cfg.trials()}
		for _, r := range results {
			if !r.feasible {
				continue
			}
			cell.Feasible++
			if r.oneShot {
				cell.OneShot++
			}
			if r.cusum {
				cell.Cusum++
			}
		}
		out.Cells = append(out.Cells, cell)
	}
	return out, nil
}

// String renders the matrix.
func (r *DetectorMatrixResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Detector coverage matrix (α = %.0f ms, Fig. 1 network)\n", r.Alpha)
	fmt.Fprintf(&b, "%-20s %10s %10s %8s\n", "attack mode", "feasible", "one-shot", "CUSUM")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-20s %7d/%-2d %10d %8d\n",
			c.Mode, c.Feasible, c.Trials, c.OneShot, c.Cusum)
	}
	return b.String()
}
