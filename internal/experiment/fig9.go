package experiment

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/mc"
	"repro/internal/netsim"
)

// StrategyKind names one of the three scapegoating strategies in
// reporting output.
type StrategyKind int

// The three strategies of Section III.
const (
	ChosenVictimStrategy StrategyKind = iota + 1
	MaxDamageStrategy
	ObfuscationStrategy
)

// String names the strategy.
func (s StrategyKind) String() string {
	switch s {
	case ChosenVictimStrategy:
		return "chosen-victim"
	case MaxDamageStrategy:
		return "maximum-damage"
	case ObfuscationStrategy:
		return "obfuscation"
	default:
		return fmt.Sprintf("StrategyKind(%d)", int(s))
	}
}

// Fig9Config parameterizes the detection experiment.
type Fig9Config struct {
	// Seed drives metric draws and measurement noise.
	Seed int64
	// Trials per (strategy × cut) cell (default 30).
	Trials int
	// Alpha is the detection threshold (default 200 ms, Section V-D).
	Alpha float64
	// Jitter is per-hop measurement noise fed through the packet
	// simulator (default 1 ms). Detection must tolerate it without
	// false alarms.
	Jitter float64
	// Parallel is the trial worker count (0 = GOMAXPROCS); it never
	// changes the result.
	Parallel int
	// Progress, when non-nil, is called after each completed trial.
	Progress mc.Progress
}

func (c Fig9Config) trials() int {
	if c.Trials <= 0 {
		return 30
	}
	return c.Trials
}

func (c Fig9Config) alpha() float64 {
	if c.Alpha <= 0 {
		return detect.DefaultAlpha
	}
	return c.Alpha
}

func (c Fig9Config) jitter() float64 {
	if c.Jitter < 0 {
		return 0
	}
	if c.Jitter == 0 {
		return 1
	}
	return c.Jitter
}

// Fig9Cell is the detection ratio of one strategy under one cut regime.
type Fig9Cell struct {
	Strategy   StrategyKind `json:"strategy"`
	PerfectCut bool         `json:"perfect_cut"`
	Trials     int          `json:"trials"`
	Attacks    int          // trials where the attack was feasible
	Detected   int          `json:"detected"`
	Ratio      float64      // Detected / Attacks
}

// Fig9Result reproduces Fig. 9: detection ratios for the three attacks
// under perfect and imperfect cuts, plus the false-alarm count on clean
// (attack-free, noisy) measurement rounds. Theorem 3 predicts ratio 0
// under perfect cuts, 1 under imperfect cuts, and the paper reports no
// false alarms. (The prose in Section V-D swaps the two ratios; this
// implementation follows Theorem 3 — see DESIGN.md.)
type Fig9Result struct {
	Cells       []Fig9Cell `json:"cells"`
	CleanRuns   int        `json:"clean_runs"`
	FalseAlarms int        `json:"false_alarms"`
}

// Fig9 runs the detection experiment on the Fig. 1 network, where the
// attacker pair {B, C} perfectly cuts link 1 and imperfectly cuts
// links 9 and 10. Perfect-cut trials use the stealthy (consistent)
// construction of Theorem 1; imperfect-cut trials use the paper's plain
// damage-maximizing LPs.
func Fig9(cfg Fig9Config) (*Fig9Result, error) {
	type fig9CellKey struct {
		strategy StrategyKind
		perfect  bool
	}
	cells := []fig9CellKey{}
	for _, strategy := range []StrategyKind{ChosenVictimStrategy, MaxDamageStrategy, ObfuscationStrategy} {
		for _, perfect := range []bool{true, false} {
			cells = append(cells, fig9CellKey{strategy, perfect})
		}
	}
	type fig9Outcome struct {
		detected bool
		attacked bool
	}
	// One flat pool run over all (cell × trial) pairs; every trial's env,
	// attack, and measurement noise derive from its own split seed.
	trials := cfg.trials()
	trialSeed := cfg.Seed + 3000
	results, err := mc.Run(len(cells)*trials, mc.Options{Workers: cfg.Parallel, Progress: cfg.Progress},
		func(t int) (fig9Outcome, error) {
			cell, trial := cells[t/trials], t%trials
			detected, attacked, err := fig9Trial(cfg, cell.strategy, cell.perfect, mc.Split(trialSeed, t))
			if err != nil {
				return fig9Outcome{}, fmt.Errorf("experiment: fig9 %v perfect=%v trial %d: %w",
					cell.strategy, cell.perfect, trial, err)
			}
			return fig9Outcome{detected: detected, attacked: attacked}, nil
		})
	if err != nil {
		return nil, err
	}
	out := &Fig9Result{}
	for c, key := range cells {
		cell := Fig9Cell{Strategy: key.strategy, PerfectCut: key.perfect, Trials: trials}
		for _, r := range results[c*trials : (c+1)*trials] {
			if r.attacked {
				cell.Attacks++
				if r.detected {
					cell.Detected++
				}
			}
		}
		if cell.Attacks > 0 {
			cell.Ratio = float64(cell.Detected) / float64(cell.Attacks)
		}
		out.Cells = append(out.Cells, cell)
	}
	// False-alarm arm: clean noisy measurement rounds.
	env, err := NewFig1Env(cfg.Seed)
	if err != nil {
		return nil, err
	}
	det, err := detect.New(env.Sys, cfg.alpha())
	if err != nil {
		return nil, err
	}
	out.CleanRuns = trials
	cleanSeed := cfg.Seed + 3100
	alarms, err := mc.Run(out.CleanRuns, mc.Options{Workers: cfg.Parallel},
		func(k int) (bool, error) {
			y, err := simulateMeasurements(env, nil, cfg.jitter(), mc.Split(cleanSeed, k))
			if err != nil {
				return false, err
			}
			rep, err := det.Inspect(y)
			if err != nil {
				return false, err
			}
			return rep.Detected, nil
		})
	if err != nil {
		return nil, err
	}
	for _, a := range alarms {
		if a {
			out.FalseAlarms++
		}
	}
	return out, nil
}

// fig9Trial runs one attack + detection round. Returns (detected,
// attackFeasible).
func fig9Trial(cfg Fig9Config, strategy StrategyKind, perfect bool, seed int64) (bool, bool, error) {
	env, err := NewFig1Env(seed)
	if err != nil {
		return false, false, err
	}
	sc := env.Scenario
	sc.Stealthy = perfect // consistent construction under perfect cuts

	// Victim pools: {B, C} perfectly cut exactly link 1 of the Fig. 1
	// network; links 9 and 10 are reachable but imperfectly cut.
	perfectPool := []graph.LinkID{env.Topo.PaperLink[1]}
	imperfectPool := []graph.LinkID{env.Topo.PaperLink[9], env.Topo.PaperLink[10]}
	pool := perfectPool
	if !perfect {
		pool = imperfectPool
	}

	var res *core.Result
	switch strategy {
	case ChosenVictimStrategy:
		res, err = core.ChosenVictim(sc, pool[:1])
	case MaxDamageStrategy:
		res, err = core.MaxDamage(sc, core.MaxDamageOptions{Candidates: pool, MaxVictims: 2})
	case ObfuscationStrategy:
		res, err = core.Obfuscate(sc, core.ObfuscationOptions{Candidates: pool, MinVictims: 1})
	default:
		return false, false, fmt.Errorf("unknown strategy %d", int(strategy))
	}
	if err != nil {
		return false, false, err
	}
	if !res.Feasible {
		return false, false, nil
	}
	plan := &netsim.AttackPlan{
		Attackers:  map[graph.NodeID]bool{env.Topo.B: true, env.Topo.C: true},
		ExtraDelay: res.M,
	}
	y, err := simulateMeasurements(env, plan, cfg.jitter(), seed+7)
	if err != nil {
		return false, false, err
	}
	det, err := detect.New(env.Sys, cfg.alpha())
	if err != nil {
		return false, false, err
	}
	rep, err := det.Inspect(y)
	if err != nil {
		return false, false, err
	}
	return rep.Detected, true, nil
}

// simulateMeasurements runs the packet-level simulator for one
// measurement round over the Fig. 1 system.
func simulateMeasurements(env *Fig1Env, plan *netsim.AttackPlan, jitter float64, seed int64) (la.Vector, error) {
	return netsim.RunDelay(netsim.Config{
		Graph:         env.Topo.G,
		Paths:         env.Sys.Paths(),
		LinkDelays:    env.Scenario.TrueX,
		Jitter:        jitter,
		ProbesPerPath: 3,
		RNG:           rand.New(rand.NewSource(seed)),
		Plan:          plan,
	})
}

// String renders the Fig. 9 table.
func (r *Fig9Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 9 detection ratios (α = 200 ms)\n")
	fmt.Fprintf(&b, "%-16s %-10s %7s %8s %9s %7s\n", "strategy", "cut", "trials", "attacks", "detected", "ratio")
	for _, c := range r.Cells {
		cut := "imperfect"
		if c.PerfectCut {
			cut = "perfect"
		}
		fmt.Fprintf(&b, "%-16s %-10s %7d %8d %9d %6.1f%%\n",
			c.Strategy, cut, c.Trials, c.Attacks, c.Detected, 100*c.Ratio)
	}
	fmt.Fprintf(&b, "false alarms: %d/%d clean runs\n", r.FalseAlarms, r.CleanRuns)
	return b.String()
}
