package experiment

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/netsim"
	"repro/internal/tomo"
)

// Fig8Config parameterizes the single-attacker experiment.
type Fig8Config struct {
	// Kind is the topology family.
	Kind NetworkKind
	// Seed drives topology, placement, and trials.
	Seed int64
	// Trials is the number of random single attackers tried (default 50;
	// each trial solves up to |L| LPs for the max-damage search).
	Trials int
	// ObfuscationMinVictims is the success bar of Section V-C2
	// (default 5, as in the paper).
	ObfuscationMinVictims int
	// Parallel is the trial worker count (0 = GOMAXPROCS); it never
	// changes the result.
	Parallel int
	// Progress, when non-nil, is called after each completed trial.
	Progress mc.Progress
}

func (c Fig8Config) trials() int {
	if c.Trials <= 0 {
		return 50
	}
	return c.Trials
}

func (c Fig8Config) minVictims() int {
	if c.ObfuscationMinVictims <= 0 {
		return 5
	}
	return c.ObfuscationMinVictims
}

// Fig8Result holds single-attacker success probabilities for the
// maximum-damage and obfuscation strategies.
type Fig8Result struct {
	Kind                NetworkKind `json:"kind"`
	Trials              int         `json:"trials"`
	MaxDamageSuccesses  int         `json:"max_damage_successes"`
	ObfuscateSuccesses  int         `json:"obfuscate_successes"`
	MaxDamageRate       float64     `json:"max_damage_rate"`
	ObfuscateRate       float64     `json:"obfuscate_rate"`
	MeanMaxDamage       float64     // mean ‖m‖₁ over successful max-damage runs
	MeanObfuscateDamage float64     `json:"mean_obfuscate_damage"`
}

// Fig8 reproduces Fig. 8: for each trial one random node turns
// malicious and attempts (a) maximum-damage scapegoating and (b)
// obfuscation requiring ≥ ObfuscationMinVictims uncertain victim links.
func Fig8(cfg Fig8Config) (*Fig8Result, error) {
	env, err := NewEnv(cfg.Kind, cfg.Seed)
	if err != nil {
		return nil, err
	}
	type fig8Trial struct {
		mdFeasible bool
		mdDamage   float64
		obSuccess  bool
		obDamage   float64
	}
	trialSeed := cfg.Seed + 2000
	results, err := mc.Run(cfg.trials(), mc.Options{Workers: cfg.Parallel, Progress: cfg.Progress},
		func(trial int) (fig8Trial, error) {
			rng := mc.RNG(trialSeed, trial)
			attacker := pickRandomAttackers(env.G, 1, rng)
			sc := &core.Scenario{
				Sys:        env.Sys,
				Thresholds: tomo.DefaultThresholds(),
				Attackers:  attacker,
				TrueX:      netsim.RoutineDelays(env.G, rng),
			}
			var r fig8Trial
			// Success is "does any feasible victim exist", so the first
			// feasible candidate answers it without sweeping every link.
			md, err := core.MaxDamage(sc, core.MaxDamageOptions{MaxVictims: 1, FirstFeasible: true})
			if err != nil {
				return r, fmt.Errorf("experiment: fig8 trial %d max-damage: %w", trial, err)
			}
			if md.Feasible {
				r.mdFeasible = true
				r.mdDamage = md.Damage
			}
			// Obfuscation's goal is "no evident outliers" (Section III-C3),
			// so links outside L_o must not cross the abnormal threshold.
			sc.ConfineOthers = true
			ob, err := core.Obfuscate(sc, core.ObfuscationOptions{MinVictims: cfg.minVictims()})
			if err != nil {
				return r, fmt.Errorf("experiment: fig8 trial %d obfuscate: %w", trial, err)
			}
			if ob.Feasible && countUncertainVictims(ob) >= cfg.minVictims() {
				r.obSuccess = true
				r.obDamage = ob.Damage
			}
			return r, nil
		})
	if err != nil {
		return nil, err
	}
	out := &Fig8Result{Kind: cfg.Kind, Trials: cfg.trials()}
	var mdDamage, obDamage float64
	for _, r := range results {
		if r.mdFeasible {
			out.MaxDamageSuccesses++
			mdDamage += r.mdDamage
		}
		if r.obSuccess {
			out.ObfuscateSuccesses++
			obDamage += r.obDamage
		}
	}
	out.MaxDamageRate = float64(out.MaxDamageSuccesses) / float64(out.Trials)
	out.ObfuscateRate = float64(out.ObfuscateSuccesses) / float64(out.Trials)
	if out.MaxDamageSuccesses > 0 {
		out.MeanMaxDamage = mdDamage / float64(out.MaxDamageSuccesses)
	}
	if out.ObfuscateSuccesses > 0 {
		out.MeanObfuscateDamage = obDamage / float64(out.ObfuscateSuccesses)
	}
	return out, nil
}

func countUncertainVictims(res *core.Result) int {
	n := 0
	for _, l := range res.Victims {
		if res.States[l] == tomo.Uncertain {
			n++
		}
	}
	return n
}

// String renders the Fig. 8 result as the figure's bar values.
func (r *Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 8 single-attacker success probabilities (%v, %d trials)\n", r.Kind, r.Trials)
	fmt.Fprintf(&b, "%-16s %10s %13s\n", "strategy", "successes", "success rate")
	fmt.Fprintf(&b, "%-16s %10d %12.1f%%\n", "maximum-damage", r.MaxDamageSuccesses, 100*r.MaxDamageRate)
	fmt.Fprintf(&b, "%-16s %10d %12.1f%%\n", "obfuscation", r.ObfuscateSuccesses, 100*r.ObfuscateRate)
	fmt.Fprintf(&b, "mean damage: max-damage %.0f ms, obfuscation %.0f ms\n", r.MeanMaxDamage, r.MeanObfuscateDamage)
	return b.String()
}
