package experiment

import (
	"strings"
	"testing"
)

func TestRocStudy(t *testing.T) {
	r, err := RocStudy(RocStudyConfig{Seed: 1, Rounds: 30})
	if err != nil {
		t.Fatalf("RocStudy: %v", err)
	}
	if len(r.Points) == 0 {
		t.Fatal("no operating points")
	}
	prevFA, prevDet := 2.0, 2.0
	for _, p := range r.Points {
		if p.FalseAlarmRate < 0 || p.FalseAlarmRate > 1 || p.DetectionRate < 0 || p.DetectionRate > 1 {
			t.Errorf("α=%g: rates outside [0,1]", p.Alpha)
		}
		// Both rates are non-increasing in α by construction.
		if p.FalseAlarmRate > prevFA+1e-9 || p.DetectionRate > prevDet+1e-9 {
			t.Errorf("α=%g: rates not monotone", p.Alpha)
		}
		// A detector can never detect worse than it false-alarms here:
		// the attacked residual stochastically dominates the clean one.
		if p.DetectionRate < p.FalseAlarmRate-0.15 {
			t.Errorf("α=%g: detection %.2f far below false alarms %.2f", p.Alpha, p.DetectionRate, p.FalseAlarmRate)
		}
		prevFA, prevDet = p.FalseAlarmRate, p.DetectionRate
	}
	// There must exist a usable operating point: near-zero false alarms
	// with substantial detection.
	usable := false
	for _, p := range r.Points {
		if p.FalseAlarmRate <= 0.05 && p.DetectionRate >= 0.8 {
			usable = true
		}
	}
	if !usable {
		t.Error("no usable operating point in the sweep")
	}
	if !strings.Contains(r.String(), "operating points") {
		t.Error("String output malformed")
	}
}
