package experiment

import (
	"strings"
	"testing"
)

func TestNewEnvWireless(t *testing.T) {
	env, err := NewEnv(Wireless, 1)
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	if !env.Sys.Identifiable() {
		t.Error("wireless system not identifiable")
	}
	if env.Sys.NumPaths() <= env.Sys.NumLinks() {
		t.Errorf("R is %d×%d; detection needs a non-square system",
			env.Sys.NumPaths(), env.Sys.NumLinks())
	}
	if len(env.Monitors) < 2 {
		t.Errorf("monitors = %d", len(env.Monitors))
	}
}

func TestNewEnvUnknownKind(t *testing.T) {
	if _, err := NewEnv(NetworkKind(99), 1); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestFig7ShapeTargets(t *testing.T) {
	// Theorem 2 / Fig. 7 shape: success probability rises with the
	// attack presence ratio; a perfect cut (ratio 1) always succeeds.
	r, err := Fig7(Fig7Config{Kind: Wireless, Seed: 1, Trials: 80})
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	var low, lowN, high, highN int
	topBinSuccess, topBinTrials := 0, 0
	for _, b := range r.Bins {
		switch {
		case b.Hi <= 0.4:
			low += b.Successes
			lowN += b.Trials
		case b.Lo >= 0.6 && b.Hi < 1.0:
			high += b.Successes
			highN += b.Trials
		case b.Hi >= 1.0:
			topBinSuccess += b.Successes
			topBinTrials += b.Trials
		}
	}
	if topBinTrials == 0 {
		t.Fatal("no trials in the top ratio bin")
	}
	if topBinSuccess != topBinTrials {
		t.Errorf("top bin success %d/%d; Theorem 1 demands 100%% at ratio 1",
			topBinSuccess, topBinTrials)
	}
	if lowN > 0 && highN > 0 {
		lowRate := float64(low) / float64(lowN)
		highRate := float64(high) / float64(highN)
		if highRate < lowRate {
			t.Errorf("success not increasing: low-ratio %.2f vs high-ratio %.2f", lowRate, highRate)
		}
	}
	if !strings.Contains(r.String(), "presence ratio") {
		t.Error("String output malformed")
	}
}

func TestFig8ShapeTargets(t *testing.T) {
	// Fig. 8 shape: "even one single attacker is likely to succeed".
	r, err := Fig8(Fig8Config{Kind: Wireless, Seed: 1, Trials: 8})
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	if r.Trials != 8 {
		t.Errorf("trials = %d", r.Trials)
	}
	if r.MaxDamageSuccesses == 0 {
		t.Error("single-attacker max-damage never succeeded; paper reports it likely")
	}
	if r.MaxDamageRate < 0 || r.MaxDamageRate > 1 || r.ObfuscateRate < 0 || r.ObfuscateRate > 1 {
		t.Error("rates outside [0,1]")
	}
	if !strings.Contains(r.String(), "maximum-damage") {
		t.Error("String output malformed")
	}
}

func TestFig9ShapeTargets(t *testing.T) {
	// Theorem 3 exactly: 0% detection under perfect cuts, 100% under
	// imperfect cuts, no false alarms (paper Section V-D).
	r, err := Fig9(Fig9Config{Seed: 1, Trials: 6})
	if err != nil {
		t.Fatalf("Fig9: %v", err)
	}
	if len(r.Cells) != 6 {
		t.Fatalf("cells = %d, want 6 (3 strategies × 2 cuts)", len(r.Cells))
	}
	for _, c := range r.Cells {
		if c.Attacks == 0 {
			t.Errorf("%v perfect=%v: no feasible attacks", c.Strategy, c.PerfectCut)
			continue
		}
		if c.PerfectCut && c.Ratio != 0 {
			t.Errorf("%v perfect cut: detection ratio %.2f, want 0", c.Strategy, c.Ratio)
		}
		if !c.PerfectCut && c.Ratio != 1 {
			t.Errorf("%v imperfect cut: detection ratio %.2f, want 1", c.Strategy, c.Ratio)
		}
	}
	if r.FalseAlarms != 0 {
		t.Errorf("false alarms = %d, want 0", r.FalseAlarms)
	}
	if !strings.Contains(r.String(), "false alarms") {
		t.Error("String output malformed")
	}
}

func TestStrategyKindStrings(t *testing.T) {
	if ChosenVictimStrategy.String() != "chosen-victim" ||
		MaxDamageStrategy.String() != "maximum-damage" ||
		ObfuscationStrategy.String() != "obfuscation" {
		t.Error("strategy names wrong")
	}
	if Wireline.String() != "wireline" || Wireless.String() != "wireless" {
		t.Error("network kind names wrong")
	}
	if StrategyKind(0).String() == "" || NetworkKind(0).String() == "" {
		t.Error("zero enum strings empty")
	}
}
