package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/mc"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/tomo"
)

// LossStudyConfig parameterizes the loss-domain study.
type LossStudyConfig struct {
	// Seed drives delivery-ratio draws and probe sampling.
	Seed int64
	// ProbesPerPath is the per-path probe count used to measure
	// delivery ratios (default 20000; the additive-domain noise on a
	// path with delivery p has std ≈ √((1−p)/(p·n)), so heavily dropped
	// paths need many probes for a stable estimate).
	ProbesPerPath int
	// Parallel is the worker count for the calibration rounds
	// (0 = GOMAXPROCS); it never changes the result.
	Parallel int
	// Progress, when non-nil, is called after each calibration round.
	Progress mc.Progress
}

func (c LossStudyConfig) probes() int {
	if c.ProbesPerPath <= 0 {
		return 20000
	}
	return c.ProbesPerPath
}

// LossStudyResult is the outcome of the loss-domain scapegoating study:
// tomography, attack, and detection all run on −log delivery ratios,
// exercising the paper's Section II-A claim that loss is additive in the
// logarithmic domain.
type LossStudyResult struct {
	// CleanMaxRatioErr is the largest per-link |estimated − true|
	// delivery-ratio error without an attack.
	CleanMaxRatioErr float64 `json:"clean_max_ratio_err"`
	// AttackFeasible reports whether the grey-hole scapegoating attack
	// found a plan.
	AttackFeasible bool `json:"attack_feasible"`
	// VictimEstimatedRatio is the victim's delivery ratio under attack,
	// as the misled operator estimates it.
	VictimEstimatedRatio float64 `json:"victim_estimated_ratio"`
	// VictimTrueRatio is its actual delivery ratio.
	VictimTrueRatio float64 `json:"victim_true_ratio"`
	// VictimAbnormal reports whether tomography classifies the victim
	// as lossy beyond the abnormal threshold.
	VictimAbnormal bool `json:"victim_abnormal"`
	// AttackersNormal reports whether every attacker link still looks
	// healthy.
	AttackersNormal bool `json:"attackers_normal"`
	// Detected is the consistency detector's verdict on the measured
	// (sampled) loss vector.
	Detected bool `json:"detected"`
	// Alpha is the calibrated detection threshold (additive domain).
	Alpha float64 `json:"alpha"`
}

// Loss-domain thresholds: delivery above 95% is normal, below 70% is
// abnormal; expressed in the additive −log domain for Definition 1.
const (
	lossNormalRatio   = 0.95
	lossAbnormalRatio = 0.70
)

// LossStudy runs grey-hole scapegoating with the loss metric end to end:
// probes are dropped per link with the true delivery probabilities, the
// attacker adds selective dropping on the paths it controls, and
// tomography, classification, and detection all operate on the additive
// −log measurements.
func LossStudy(cfg LossStudyConfig) (*LossStudyResult, error) {
	env, err := NewFig1Env(cfg.Seed)
	if err != nil {
		return nil, err
	}
	f := env.Topo
	rng := rand.New(rand.NewSource(cfg.Seed + 5000))

	// True per-link delivery ratios in [0.99, 0.999] — genuinely healthy
	// links, comfortably above the 0.95 normal bar.
	nLinks := f.G.NumLinks()
	ratios := make(la.Vector, nLinks)
	trueX := make(la.Vector, nLinks)
	for i := range ratios {
		ratios[i] = 0.99 + rng.Float64()*0.009
		x, err := metrics.Loss.ToAdditive(ratios[i])
		if err != nil {
			return nil, err
		}
		trueX[i] = x
	}

	thLower, err := metrics.Loss.ToAdditive(lossNormalRatio)
	if err != nil {
		return nil, err
	}
	thUpper, err := metrics.Loss.ToAdditive(lossAbnormalRatio)
	if err != nil {
		return nil, err
	}
	th := tomo.Thresholds{Lower: thLower, Upper: thUpper}

	// Every measurement round draws probes from its own split PRNG, so
	// rounds are independent of each other and of execution order.
	roundSeed := cfg.Seed + 5100
	runRound := func(plan *netsim.AttackPlan, round int) (la.Vector, error) {
		measured, err := netsim.RunLoss(netsim.Config{
			Graph:         f.G,
			Paths:         env.Sys.Paths(),
			LinkDelays:    trueX, // unused by loss mode but validated
			ProbesPerPath: cfg.probes(),
			RNG:           mc.RNG(roundSeed, round),
			Plan:          plan,
		}, ratios)
		if err != nil {
			return nil, err
		}
		y := make(la.Vector, len(measured))
		floor := 1.0 / (2.0 * float64(cfg.probes()))
		for i, r := range measured {
			if r < floor {
				r = floor // a fully dropped path still yields a finite log
			}
			y[i] = -math.Log(r)
		}
		return y, nil
	}

	out := &LossStudyResult{}

	// 1. Clean round: tomography recovers the per-link ratios.
	yClean, err := runRound(nil, 0)
	if err != nil {
		return nil, err
	}
	xhat, err := env.Sys.Estimate(yClean)
	if err != nil {
		return nil, err
	}
	for l := 0; l < nLinks; l++ {
		errAbs := math.Abs(metrics.Loss.FromAdditive(xhat[l]) - ratios[l])
		if errAbs > out.CleanMaxRatioErr {
			out.CleanMaxRatioErr = errAbs
		}
	}

	// 2. Calibrate the detector on clean sampled rounds, fanned out over
	// the trial pool (rounds 1..30 of the split stream).
	cleanRuns, err := mc.Run(30, mc.Options{Workers: cfg.Parallel, Progress: cfg.Progress},
		func(k int) (la.Vector, error) {
			return runRound(nil, 1+k)
		})
	if err != nil {
		return nil, err
	}
	alpha, err := detect.Calibrate(env.Sys, cleanRuns, 1.0, 1.5)
	if err != nil {
		return nil, err
	}
	out.Alpha = alpha

	// 3. Grey-hole attack: B and C scapegoat link 10 by selective
	// dropping. The additive cap 1.5 ≈ dropping at most ~78% of a
	// path's probes — heavier dropping would make the log-domain
	// sampling noise on those paths swamp the classification margins.
	sc := &core.Scenario{
		Sys:        env.Sys,
		Thresholds: th,
		Attackers:  f.Attackers,
		TrueX:      trueX,
		PathCap:    1.5,
		// Sampling noise at a few thousand probes is ~0.003 in the
		// additive domain per path and a few times that per estimated
		// link; a 0.025 margin keeps binding constraints clear of the
		// classification bars after re-estimation.
		Margin: 0.025,
	}
	victim := f.PaperLink[10]
	res, err := core.ChosenVictim(sc, []graph.LinkID{victim})
	if err != nil {
		return nil, err
	}
	out.AttackFeasible = res.Feasible
	if !res.Feasible {
		return out, nil
	}

	// 4. Operational replay: probes are actually dropped, measurements
	// re-estimated from samples.
	yAttack, err := runRound(&netsim.AttackPlan{
		Attackers:  map[graph.NodeID]bool{f.B: true, f.C: true},
		ExtraDelay: res.M,
	}, 31)
	if err != nil {
		return nil, err
	}
	xhatAtk, err := env.Sys.Estimate(yAttack)
	if err != nil {
		return nil, err
	}
	out.VictimEstimatedRatio = metrics.Loss.FromAdditive(xhatAtk[victim])
	out.VictimTrueRatio = ratios[victim]
	out.VictimAbnormal = th.Classify(xhatAtk[victim]) == tomo.Abnormal
	out.AttackersNormal = true
	links, err := sc.AttackerLinks()
	if err != nil {
		return nil, err
	}
	for l := range links {
		if th.Classify(xhatAtk[l]) != tomo.Normal {
			out.AttackersNormal = false
		}
	}

	// 5. Detection on the sampled measurements.
	det, err := detect.New(env.Sys, alpha)
	if err != nil {
		return nil, err
	}
	rep, err := det.Inspect(yAttack)
	if err != nil {
		return nil, err
	}
	out.Detected = rep.Detected
	return out, nil
}

// String renders the loss study summary.
func (r *LossStudyResult) String() string {
	var b strings.Builder
	b.WriteString("Loss-domain scapegoating study (grey-hole attack on link 10)\n")
	fmt.Fprintf(&b, "clean tomography max delivery-ratio error: %.4f\n", r.CleanMaxRatioErr)
	if !r.AttackFeasible {
		b.WriteString("attack: INFEASIBLE\n")
		return b.String()
	}
	fmt.Fprintf(&b, "victim delivery ratio: true %.3f, estimated under attack %.3f (abnormal=%v)\n",
		r.VictimTrueRatio, r.VictimEstimatedRatio, r.VictimAbnormal)
	fmt.Fprintf(&b, "attacker links all normal: %v\n", r.AttackersNormal)
	fmt.Fprintf(&b, "detector (α=%.4f in −log domain): detected=%v\n", r.Alpha, r.Detected)
	return b.String()
}
