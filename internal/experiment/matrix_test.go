package experiment

import (
	"strings"
	"testing"
)

func TestDetectorMatrix(t *testing.T) {
	r, err := DetectorMatrix(DetectorMatrixConfig{Seed: 1, Trials: 5})
	if err != nil {
		t.Fatalf("DetectorMatrix: %v", err)
	}
	if len(r.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(r.Cells))
	}
	byMode := make(map[AttackMode]MatrixCell, 4)
	for _, c := range r.Cells {
		byMode[c.Mode] = c
		if c.Feasible == 0 {
			t.Errorf("%v: no feasible trials", c.Mode)
		}
	}
	// The coverage story:
	// plain/imperfect — both detectors catch everything.
	pi := byMode[PlainImperfect]
	if pi.OneShot != pi.Feasible {
		t.Errorf("plain/imperfect one-shot %d/%d", pi.OneShot, pi.Feasible)
	}
	// stealthy/perfect — nothing fires (Theorem 3: undetectable).
	sp := byMode[StealthyPerfect]
	if sp.OneShot != 0 || sp.Cusum != 0 {
		t.Errorf("stealthy/perfect caught %d/%d — contradicts Theorem 3", sp.OneShot, sp.Cusum)
	}
	// evasive/imperfect — one-shot blind, CUSUM catches all.
	ev := byMode[EvasiveImperfect]
	if ev.OneShot != 0 {
		t.Errorf("evasive one-shot %d, want 0 (evasion failed)", ev.OneShot)
	}
	if ev.Cusum != ev.Feasible {
		t.Errorf("evasive CUSUM %d/%d", ev.Cusum, ev.Feasible)
	}
	// plain/perfect — the damage-max LP ignores consistency, so it is
	// caught despite the perfect cut (the modeling nuance of DESIGN.md).
	pp := byMode[PlainPerfect]
	if pp.OneShot == 0 {
		t.Errorf("plain/perfect one-shot 0/%d — expected the inconsistent optimum to be caught", pp.Feasible)
	}
	if !strings.Contains(r.String(), "coverage matrix") {
		t.Error("String output malformed")
	}
}

func TestAttackModeStrings(t *testing.T) {
	for _, m := range []AttackMode{PlainImperfect, PlainPerfect, StealthyPerfect, EvasiveImperfect} {
		if m.String() == "" || strings.HasPrefix(m.String(), "AttackMode(") {
			t.Errorf("mode %d has no name", int(m))
		}
	}
	if !strings.HasPrefix(AttackMode(0).String(), "AttackMode(") {
		t.Error("zero mode string wrong")
	}
}
