package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDualsKnownLP(t *testing.T) {
	// maximize 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18.
	// Optimum 36 at (2,6); known duals y = (0, 3/2, 1).
	p := NewProblem(2)
	if err := p.SetObjective([]float64{3, 5}); err != nil {
		t.Fatal(err)
	}
	rhs := []float64{4, 12, 18}
	rows := [][]float64{{1, 0}, {0, 2}, {3, 2}}
	for i := range rows {
		if err := p.AddConstraint(rows[i], LE, rhs[i]); err != nil {
			t.Fatal(err)
		}
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatal(sol.Status)
	}
	want := []float64{0, 1.5, 1}
	for i := range want {
		if math.Abs(sol.Duals[i]-want[i]) > 1e-9 {
			t.Errorf("dual[%d] = %g, want %g", i, sol.Duals[i], want[i])
		}
	}
	// Strong duality: bᵀy = 0·4 + 1.5·12 + 1·18 = 36.
	var by float64
	for i := range rhs {
		by += sol.Duals[i] * rhs[i]
	}
	if math.Abs(by-sol.Objective) > 1e-9 {
		t.Errorf("bᵀy = %g, objective = %g", by, sol.Objective)
	}
}

func TestDualsMinimization(t *testing.T) {
	// minimize 2x + 3y s.t. x + y ≥ 10, x ≥ 2 → optimum 20 at (10, 0).
	// Dual: multiplier 2 on the first row (binding), 0 on the second.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{2, 3}); err != nil {
		t.Fatal(err)
	}
	p.Minimize()
	if err := p.AddConstraint([]float64{1, 1}, GE, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 0}, GE, 2); err != nil {
		t.Fatal(err)
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatal(sol.Status)
	}
	by := sol.Duals[0]*10 + sol.Duals[1]*2
	if math.Abs(by-20) > 1e-9 {
		t.Errorf("bᵀy = %g, want 20 (duals %v)", by, sol.Duals)
	}
}

func TestStrongDualityProperty(t *testing.T) {
	// Property: on random bounded-feasible maximization LPs built ONLY
	// from explicit constraints (no SetUpperBound), the optimum equals
	// Σ duals·rhs, every ≤ dual is ≥ 0, and complementary slackness
	// holds: a constraint with positive slack has zero dual.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		p := NewProblem(n)
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.NormFloat64()
		}
		if err := p.SetObjective(c); err != nil {
			return false
		}
		rows := make([][]float64, 0, m+n)
		rhs := make([]float64, 0, m+n)
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			rows = append(rows, row)
			rhs = append(rhs, 1+rng.Float64()*9)
			if err := p.AddConstraint(row, LE, rhs[len(rhs)-1]); err != nil {
				return false
			}
		}
		// Box rows keep it bounded (explicit, so they carry duals too).
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			rows = append(rows, row)
			rhs = append(rhs, 5+rng.Float64()*5)
			if err := p.AddConstraint(row, LE, rhs[len(rhs)-1]); err != nil {
				return false
			}
		}
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			return err == nil // infeasible/unbounded draws are fine
		}
		var by float64
		for i := range rows {
			y := sol.Duals[i]
			if y < -1e-7 {
				return false // ≤ rows in a max problem need y ≥ 0
			}
			by += y * rhs[i]
			// Complementary slackness.
			var ax float64
			for j := range sol.X {
				ax += rows[i][j] * sol.X[j]
			}
			slack := rhs[i] - ax
			if slack > 1e-6 && y > 1e-6 {
				return false
			}
		}
		return math.Abs(by-sol.Objective) < 1e-6*(1+math.Abs(sol.Objective))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBoundDuals(t *testing.T) {
	// maximize x with x ≤ 7 as a variable bound: the bound's dual is 1
	// and strong duality runs through BoundDuals.
	p := NewProblem(1)
	if err := p.SetObjective([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := p.SetUpperBound(0, 7); err != nil {
		t.Fatal(err)
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-7) > 1e-9 {
		t.Fatalf("status=%v obj=%g", sol.Status, sol.Objective)
	}
	if math.Abs(sol.BoundDuals[0]-1) > 1e-9 {
		t.Errorf("bound dual = %g, want 1", sol.BoundDuals[0])
	}
	if len(sol.Duals) != 0 {
		t.Errorf("explicit duals = %v, want empty", sol.Duals)
	}
}

func TestDualsEqualityConstraint(t *testing.T) {
	// maximize x + y s.t. x + y = 5, x ≤ 3: optimum 5. The equality's
	// dual must satisfy strong duality with the (slack) x ≤ 3 row.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 1}, EQ, 5); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 0}, LE, 3); err != nil {
		t.Fatal(err)
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatal(sol.Status)
	}
	by := sol.Duals[0]*5 + sol.Duals[1]*3
	if math.Abs(by-5) > 1e-9 {
		t.Errorf("bᵀy = %g, want 5 (duals %v)", by, sol.Duals)
	}
}

func TestDualsNegativeRHSFlip(t *testing.T) {
	// maximize x s.t. −x ≤ −2 (⇒ x ≥ 2), x ≤ 5: optimum 5, first row
	// slack at the optimum ⇒ zero dual; x ≤ 5 binding ⇒ dual 1.
	p := NewProblem(1)
	if err := p.SetObjective([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{-1}, LE, -2); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1}, LE, 5); err != nil {
		t.Fatal(err)
	}
	sol := mustSolve(t, p)
	by := sol.Duals[0]*(-2) + sol.Duals[1]*5
	if math.Abs(by-5) > 1e-9 {
		t.Errorf("bᵀy = %g, want 5 (duals %v)", by, sol.Duals)
	}
	if math.Abs(sol.Duals[0]) > 1e-9 {
		t.Errorf("slack row dual = %g, want 0", sol.Duals[0])
	}
}
