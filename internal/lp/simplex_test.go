package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustSolve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestSolveBasicMax(t *testing.T) {
	// maximize 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 (classic):
	// optimum 36 at (2, 6).
	p := NewProblem(2)
	if err := p.SetObjective([]float64{3, 5}); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		coeffs []float64
		rhs    float64
	}{
		{[]float64{1, 0}, 4},
		{[]float64{0, 2}, 12},
		{[]float64{3, 2}, 18},
	} {
		if err := p.AddConstraint(c.coeffs, LE, c.rhs); err != nil {
			t.Fatal(err)
		}
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Objective-36) > 1e-9 {
		t.Errorf("objective = %g, want 36", sol.Objective)
	}
	if math.Abs(sol.X[0]-2) > 1e-9 || math.Abs(sol.X[1]-6) > 1e-9 {
		t.Errorf("x = %v, want [2 6]", sol.X)
	}
}

func TestSolveMinimization(t *testing.T) {
	// minimize 2x + 3y s.t. x + y ≥ 10, x ≥ 2: optimum 2·10+0… with
	// y free to be 0? x+y ≥ 10 and x ≥ 2 ⇒ cheapest is y=0, x=10 → 20?
	// No: coefficient of y is 3 > 2, so all weight on x: x=10, y=0, obj 20.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{2, 3}); err != nil {
		t.Fatal(err)
	}
	p.Minimize()
	if err := p.AddConstraint([]float64{1, 1}, GE, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 0}, GE, 2); err != nil {
		t.Fatal(err)
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-20) > 1e-9 {
		t.Errorf("objective = %g, want 20", sol.Objective)
	}
}

func TestSolveEquality(t *testing.T) {
	// maximize x + y s.t. x + y = 5, x ≤ 3 → 5, e.g. (3,2).
	p := NewProblem(2)
	if err := p.SetObjective([]float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 1}, EQ, 5); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 0}, LE, 3); err != nil {
		t.Fatal(err)
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-5) > 1e-9 {
		t.Fatalf("status=%v obj=%g, want optimal 5", sol.Status, sol.Objective)
	}
	if math.Abs(sol.X[0]+sol.X[1]-5) > 1e-9 {
		t.Errorf("x+y = %g, want 5", sol.X[0]+sol.X[1])
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x ≤ 1 and x ≥ 2 cannot hold together.
	p := NewProblem(1)
	if err := p.SetObjective([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1}, LE, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1}, GE, 2); err != nil {
		t.Fatal(err)
	}
	sol := mustSolve(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
	if sol.Feasible() {
		t.Error("Feasible() = true for infeasible problem")
	}
}

func TestSolveUnbounded(t *testing.T) {
	// maximize x with only x ≥ 1.
	p := NewProblem(1)
	if err := p.SetObjective([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1}, GE, 1); err != nil {
		t.Fatal(err)
	}
	sol := mustSolve(t, p)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// maximize x s.t. −x ≤ −2 (i.e. x ≥ 2), x ≤ 5 → 5.
	p := NewProblem(1)
	if err := p.SetObjective([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{-1}, LE, -2); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1}, LE, 5); err != nil {
		t.Fatal(err)
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-5) > 1e-9 {
		t.Fatalf("status=%v obj=%g, want optimal 5", sol.Status, sol.Objective)
	}
}

func TestSolveUpperBounds(t *testing.T) {
	// maximize x + y with x ≤ 2 (bound), y ≤ 3 (bound), x + y ≥ 1.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.SetUpperBound(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.SetUpperBound(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 1}, GE, 1); err != nil {
		t.Fatal(err)
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-5) > 1e-9 {
		t.Fatalf("status=%v obj=%g, want optimal 5", sol.Status, sol.Objective)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// Beale's classic cycling example (cycles under naive most-negative
	// pivoting); Bland's rule must terminate with optimum 0.05.
	p := NewProblem(4)
	if err := p.SetObjective([]float64{0.75, -150, 0.02, -6}); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		coeffs []float64
		rhs    float64
	}{
		{[]float64{0.25, -60, -0.04, 9}, 0},
		{[]float64{0.5, -90, -0.02, 3}, 0},
		{[]float64{0, 0, 1, 0}, 1},
	} {
		if err := p.AddConstraint(c.coeffs, LE, c.rhs); err != nil {
			t.Fatal(err)
		}
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Objective-0.05) > 1e-9 {
		t.Errorf("objective = %g, want 0.05", sol.Objective)
	}
}

func TestSolveZeroVariables(t *testing.T) {
	p := NewProblem(0)
	sol := mustSolve(t, p)
	if sol.Status != Optimal || sol.Objective != 0 {
		t.Fatalf("empty problem: status=%v obj=%g", sol.Status, sol.Objective)
	}
}

func TestSolveRedundantEqualities(t *testing.T) {
	// x + y = 2 stated twice: redundant row leaves an artificial basic
	// at zero; the solve must still succeed.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := p.AddConstraint([]float64{1, 1}, EQ, 2); err != nil {
			t.Fatal(err)
		}
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-2) > 1e-9 {
		t.Fatalf("status=%v obj=%g, want optimal 2", sol.Status, sol.Objective)
	}
}

func TestProblemValidation(t *testing.T) {
	p := NewProblem(2)
	if err := p.SetObjective([]float64{1}); !errors.Is(err, ErrBadProblem) {
		t.Errorf("short objective: err = %v", err)
	}
	if err := p.AddConstraint([]float64{1}, LE, 0); !errors.Is(err, ErrBadProblem) {
		t.Errorf("short constraint: err = %v", err)
	}
	if err := p.AddConstraint([]float64{1, 1}, Relation(0), 0); !errors.Is(err, ErrBadProblem) {
		t.Errorf("zero relation: err = %v", err)
	}
	if err := p.AddConstraint([]float64{1, 1}, LE, math.NaN()); !errors.Is(err, ErrBadProblem) {
		t.Errorf("NaN rhs: err = %v", err)
	}
	if err := p.SetUpperBound(5, 1); !errors.Is(err, ErrBadProblem) {
		t.Errorf("bad bound index: err = %v", err)
	}
	if err := p.SetUpperBound(0, -1); !errors.Is(err, ErrBadProblem) {
		t.Errorf("negative bound: err = %v", err)
	}
	if err := p.SetObjectiveCoeff(9, 1); !errors.Is(err, ErrBadProblem) {
		t.Errorf("bad objective index: err = %v", err)
	}
}

func TestRelationStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("Relation strings wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("Status strings wrong")
	}
	if Relation(99).String() == "" || Status(99).String() == "" {
		t.Error("unknown enum String empty")
	}
}

// TestSolutionFeasibilityProperty checks on random bounded LPs that the
// reported optimum (a) satisfies every constraint and (b) dominates a
// cloud of random feasible points — a sampling check of optimality.
func TestSolutionFeasibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		p := NewProblem(n)
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.NormFloat64()
		}
		if err := p.SetObjective(c); err != nil {
			return false
		}
		// Box-bound all variables so the LP is never unbounded.
		ub := make([]float64, n)
		for j := 0; j < n; j++ {
			ub[j] = 1 + rng.Float64()*9
			if err := p.SetUpperBound(j, ub[j]); err != nil {
				return false
			}
		}
		rows := make([][]float64, m)
		rhs := make([]float64, m)
		rels := make([]Relation, m)
		for i := 0; i < m; i++ {
			rows[i] = make([]float64, n)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64()
			}
			rels[i] = []Relation{LE, GE}[rng.Intn(2)]
			rhs[i] = rng.NormFloat64() * 5
			if err := p.AddConstraint(rows[i], rels[i], rhs[i]); err != nil {
				return false
			}
		}
		sol, err := Solve(p)
		if err != nil {
			return false
		}
		feasible := func(x []float64) bool {
			for j := range x {
				if x[j] < -1e-9 || x[j] > ub[j]+1e-9 {
					return false
				}
			}
			for i := range rows {
				var s float64
				for j := range x {
					s += rows[i][j] * x[j]
				}
				switch rels[i] {
				case LE:
					if s > rhs[i]+1e-7 {
						return false
					}
				case GE:
					if s < rhs[i]-1e-7 {
						return false
					}
				}
			}
			return true
		}
		objOf := func(x []float64) float64 {
			var s float64
			for j := range x {
				s += c[j] * x[j]
			}
			return s
		}
		if sol.Status == Optimal {
			if !feasible(sol.X) {
				return false
			}
			for j, v := range sol.X {
				if v < -1e-9 {
					return false
				}
				_ = j
			}
		}
		// Sample random points; any feasible sample must not beat the
		// optimum, and if the LP claims infeasible no sample may be
		// feasible.
		for k := 0; k < 200; k++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = rng.Float64() * 10
			}
			if !feasible(x) {
				continue
			}
			switch sol.Status {
			case Infeasible:
				return false
			case Optimal:
				if objOf(x) > sol.Objective+1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSolveNilProblem(t *testing.T) {
	if _, err := Solve(nil); !errors.Is(err, ErrBadProblem) {
		t.Fatalf("err = %v, want ErrBadProblem", err)
	}
}

func TestIterationsReported(t *testing.T) {
	p := NewProblem(2)
	if err := p.SetObjective([]float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 1}, LE, 1); err != nil {
		t.Fatal(err)
	}
	sol := mustSolve(t, p)
	if sol.Iterations <= 0 {
		t.Errorf("Iterations = %d, want > 0", sol.Iterations)
	}
}
