package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForce2D solves a 2-variable LP exactly by enumerating candidate
// vertices: intersections of every pair of constraint lines (including
// the axes x=0, y=0), filtered for feasibility. It is an independent
// oracle for the simplex on small instances.
func bruteForce2D(c [2]float64, rows [][2]float64, rels []Relation, rhs []float64) (best float64, feasible bool) {
	// Collect lines a·x = b: constraints plus the axes.
	type line struct {
		a [2]float64
		b float64
	}
	lines := []line{{[2]float64{1, 0}, 0}, {[2]float64{0, 1}, 0}}
	for i := range rows {
		lines = append(lines, line{rows[i], rhs[i]})
	}
	feas := func(x, y float64) bool {
		if x < -1e-9 || y < -1e-9 {
			return false
		}
		for i := range rows {
			v := rows[i][0]*x + rows[i][1]*y
			switch rels[i] {
			case LE:
				if v > rhs[i]+1e-9 {
					return false
				}
			case GE:
				if v < rhs[i]-1e-9 {
					return false
				}
			case EQ:
				if math.Abs(v-rhs[i]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	best = math.Inf(-1)
	for i := 0; i < len(lines); i++ {
		for j := i + 1; j < len(lines); j++ {
			a1, b1 := lines[i].a, lines[i].b
			a2, b2 := lines[j].a, lines[j].b
			det := a1[0]*a2[1] - a1[1]*a2[0]
			if math.Abs(det) < 1e-12 {
				continue
			}
			x := (b1*a2[1] - b2*a1[1]) / det
			y := (a1[0]*b2 - a2[0]*b1) / det
			if feas(x, y) {
				feasible = true
				if v := c[0]*x + c[1]*y; v > best {
					best = v
				}
			}
		}
	}
	return best, feasible
}

func TestSimplexMatchesVertexEnumeration2D(t *testing.T) {
	// Property: on random bounded 2-variable maximization LPs, the
	// simplex optimum equals the exact vertex-enumeration optimum, and
	// feasibility verdicts agree.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(4)
		var (
			rows [][2]float64
			rels []Relation
			rhs  []float64
		)
		c := [2]float64{rng.NormFloat64(), rng.NormFloat64()}
		p := NewProblem(2)
		if err := p.SetObjective(c[:]); err != nil {
			return false
		}
		for i := 0; i < m; i++ {
			row := [2]float64{rng.NormFloat64(), rng.NormFloat64()}
			rel := []Relation{LE, GE}[rng.Intn(2)]
			b := rng.NormFloat64() * 4
			rows = append(rows, row)
			rels = append(rels, rel)
			rhs = append(rhs, b)
			if err := p.AddConstraint(row[:], rel, b); err != nil {
				return false
			}
		}
		// Bounding box as explicit constraints so the oracle sees them.
		for j := 0; j < 2; j++ {
			row := [2]float64{}
			row[j] = 1
			rows = append(rows, row)
			rels = append(rels, LE)
			rhs = append(rhs, 10+rng.Float64()*10)
			if err := p.AddConstraint(row[:], LE, rhs[len(rhs)-1]); err != nil {
				return false
			}
		}
		sol, err := Solve(p)
		if err != nil {
			return false
		}
		want, feasible := bruteForce2D(c, rows, rels, rhs)
		switch sol.Status {
		case Optimal:
			if !feasible {
				return false
			}
			return math.Abs(sol.Objective-want) < 1e-6*(1+math.Abs(want))
		case Infeasible:
			return !feasible
		case Unbounded:
			// Boxed above, but GE rows could make the region empty of
			// vertices yet unbounded below… cannot happen for a max
			// problem with x ≤ box; treat as failure.
			return false
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
