package lp

import (
	"fmt"
	"math"
)

// Numerical tolerances for the simplex. Problems in this project are
// built from 0/1 routing matrices and millisecond-scale thresholds, so
// an absolute 1e-9 band is far below any meaningful coefficient.
const (
	pivotTol  = 1e-9
	zeroTol   = 1e-9
	maxPivots = 200000
)

// Solve runs the two-phase primal simplex. A malformed problem returns
// ErrBadProblem; infeasibility and unboundedness are reported in
// Solution.Status, not as errors, because they are expected outcomes of
// attack-feasibility queries.
func Solve(p *Problem) (*Solution, error) {
	if p == nil || p.n < 0 {
		return nil, fmt.Errorf("lp: nil or negative-size problem: %w", ErrBadProblem)
	}
	t, err := newTableau(p)
	if err != nil {
		return nil, err
	}
	sol := &Solution{}

	// Phase 1: drive artificial variables to zero.
	if t.numArt > 0 {
		t.setPhase1Objective()
		if err := t.iterate(&sol.Iterations); err != nil {
			return nil, err
		}
		if t.objValue() > zeroTol*float64(1+t.rows) {
			sol.Status = Infeasible
			return sol, nil
		}
		if err := t.evictArtificials(); err != nil {
			return nil, err
		}
	}

	// Phase 2: optimize the real objective.
	t.setPhase2Objective(p)
	if err := t.iterate(&sol.Iterations); err != nil {
		if err == errUnbounded {
			sol.Status = Unbounded
			return sol, nil
		}
		return nil, err
	}

	sol.Status = Optimal
	sol.X = t.extractSolution(p.n)
	var obj float64
	for j, c := range p.objective {
		obj += c * sol.X[j]
	}
	sol.Objective = obj

	// Split the row multipliers back into explicit-constraint duals and
	// upper-bound duals (bound rows were appended after the explicit
	// ones in newTableau, in variable order).
	all := t.duals(p.minimize)
	sol.Duals = all[:len(p.constraints)]
	sol.BoundDuals = make([]float64, p.n)
	bi := len(p.constraints)
	for j, u := range p.upper {
		if math.IsInf(u, 1) {
			continue
		}
		sol.BoundDuals[j] = all[bi]
		bi++
	}
	return sol, nil
}

var errUnbounded = fmt.Errorf("lp: unbounded")

// tableau is a dense simplex tableau. Column layout:
//
//	[0, nStruct)                structural variables
//	[nStruct, nStruct+numSlack) slack/surplus variables
//	[..., ...+numArt)           artificial variables
//	last column                 right-hand side
//
// Row `rows` (one past the constraints) is the objective row storing
// reduced costs z_j − c_j for a maximization; the entering rule looks
// for negative entries.
type tableau struct {
	rows, cols int // constraint rows, total variable columns (excl. RHS)
	nStruct    int
	numSlack   int
	numArt     int
	a          [][]float64 // (rows+1) × (cols+1)
	basis      []int       // basis[i] = column basic in row i
	artCols    map[int]bool
	phase1     bool
	// Dual bookkeeping: for tableau row i, auxCol[i] is the slack,
	// surplus, or artificial column whose final reduced cost equals the
	// row's simplex multiplier, and auxSign[i] folds in both the
	// column's ±1 coefficient and any RHS-normalization row flip, so
	// that dual_i = auxSign[i] · objRow[auxCol[i]] in the maximization
	// tableau.
	auxCol  []int
	auxSign []float64
}

func newTableau(p *Problem) (*tableau, error) {
	// Compile upper bounds into explicit ≤ rows.
	cons := make([]Constraint, 0, len(p.constraints)+p.n)
	cons = append(cons, p.constraints...)
	for j, u := range p.upper {
		if math.IsInf(u, 1) {
			continue
		}
		row := make([]float64, p.n)
		row[j] = 1
		cons = append(cons, Constraint{Coeffs: row, Rel: LE, RHS: u})
	}

	m := len(cons)
	// Count auxiliary columns. Normalize RHS ≥ 0 first (flip row sign
	// and sense), then: LE gets a slack (basic), GE gets surplus +
	// artificial, EQ gets artificial.
	type rowPlan struct {
		coeffs  []float64
		rel     Relation
		rhs     float64
		flipped bool
	}
	plans := make([]rowPlan, m)
	numSlack, numArt := 0, 0
	for i, c := range cons {
		coeffs := make([]float64, p.n)
		copy(coeffs, c.Coeffs)
		rel, rhs := c.Rel, c.RHS
		if rhs < 0 {
			for j := range coeffs {
				coeffs[j] = -coeffs[j]
			}
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		plans[i] = rowPlan{coeffs, rel, rhs, rhs != c.RHS || rel != c.Rel}
		switch rel {
		case LE:
			numSlack++
		case GE:
			numSlack++
			numArt++
		case EQ:
			numArt++
		}
	}

	cols := p.n + numSlack + numArt
	t := &tableau{
		rows:     m,
		cols:     cols,
		nStruct:  p.n,
		numSlack: numSlack,
		numArt:   numArt,
		a:        make([][]float64, m+1),
		basis:    make([]int, m),
		artCols:  make(map[int]bool, numArt),
		auxCol:   make([]int, m),
		auxSign:  make([]float64, m),
	}
	for i := range t.a {
		t.a[i] = make([]float64, cols+1)
	}

	slackAt := p.n
	artAt := p.n + numSlack
	for i, pl := range plans {
		copy(t.a[i], pl.coeffs)
		t.a[i][cols] = pl.rhs
		sign := 1.0
		if pl.flipped {
			sign = -1.0
		}
		switch pl.rel {
		case LE:
			t.a[i][slackAt] = 1
			t.basis[i] = slackAt
			t.auxCol[i], t.auxSign[i] = slackAt, sign
			slackAt++
		case GE:
			t.a[i][slackAt] = -1
			slackAt++
			t.a[i][artAt] = 1
			t.basis[i] = artAt
			t.artCols[artAt] = true
			t.auxCol[i], t.auxSign[i] = artAt, sign
			artAt++
		case EQ:
			t.a[i][artAt] = 1
			t.basis[i] = artAt
			t.artCols[artAt] = true
			t.auxCol[i], t.auxSign[i] = artAt, sign
			artAt++
		}
	}
	return t, nil
}

// duals reads the simplex multipliers off the final objective row: the
// reduced cost of row i's slack (cost-0 unit column) or artificial
// (cost 0 in phase 2) equals c_Bᵀ·B⁻¹·e_i = y_i. auxSign folds in the
// RHS-normalization flip; minimize converts the multipliers back to the
// problem's own sense so that Σ y_i·b_i equals the reported optimum.
func (t *tableau) duals(minimize bool) []float64 {
	obj := t.a[t.rows]
	out := make([]float64, t.rows)
	for i := 0; i < t.rows; i++ {
		y := t.auxSign[i] * obj[t.auxCol[i]]
		if minimize {
			y = -y
		}
		out[i] = y
	}
	return out
}

// setPhase1Objective loads the phase-1 objective: maximize −Σ artificials,
// i.e. reduced costs start as Σ (rows with artificial basis) priced out.
func (t *tableau) setPhase1Objective() {
	t.phase1 = true
	obj := t.a[t.rows]
	for j := range obj {
		obj[j] = 0
	}
	// Cost −1 on artificials ⇒ z_j − c_j row = Σ_basic-artificial-rows
	// (−(−1)·row) ... computed by pricing out: for each row whose basis
	// is artificial (cost −1), subtract the row from the objective.
	for i := 0; i < t.rows; i++ {
		if !t.artCols[t.basis[i]] {
			continue
		}
		for j := 0; j <= t.cols; j++ {
			obj[j] -= t.a[i][j]
		}
	}
	// Basic artificial columns must show reduced cost 0; pricing out
	// already guarantees it. Non-basic artificials get +1 (their cost
	// −1 negated) — add c_j on their own columns.
	for c := range t.artCols {
		obj[c]++
	}
}

// setPhase2Objective loads the real objective (converted to
// maximization) and prices out the current basis. Artificial columns are
// frozen by marking them unusable for entry.
func (t *tableau) setPhase2Objective(p *Problem) {
	t.phase1 = false
	obj := t.a[t.rows]
	for j := range obj {
		obj[j] = 0
	}
	sign := 1.0
	if p.minimize {
		sign = -1.0
	}
	// Reduced cost row starts at −c_j for structural columns.
	for j := 0; j < t.nStruct; j++ {
		obj[j] = -sign * p.objective[j]
	}
	// Price out basic variables: make reduced cost of every basic
	// column zero by row elimination.
	for i := 0; i < t.rows; i++ {
		b := t.basis[i]
		f := obj[b]
		if f == 0 {
			continue
		}
		for j := 0; j <= t.cols; j++ {
			obj[j] -= f * t.a[i][j]
		}
	}
}

// objValue returns the current phase objective value (the negated RHS of
// the objective row equals the maximized value; for phase 1 the value of
// Σ artificials is its negation).
func (t *tableau) objValue() float64 {
	// For phase 1 we track maximize −Σart, objective row RHS holds the
	// value of the maximized expression; Σart = −value.
	return -t.a[t.rows][t.cols]
}

// iterate runs simplex pivots until optimality or unboundedness.
func (t *tableau) iterate(pivots *int) error {
	for {
		if *pivots >= maxPivots {
			return fmt.Errorf("lp: pivot limit %d exceeded (cycling?)", maxPivots)
		}
		enter := t.chooseEntering()
		if enter < 0 {
			return nil // optimal
		}
		leave := t.chooseLeaving(enter)
		if leave < 0 {
			if t.phase1 {
				// Phase-1 objective is bounded by construction; this
				// indicates numerical trouble.
				return fmt.Errorf("lp: phase-1 unbounded — numerical failure")
			}
			return errUnbounded
		}
		t.pivot(leave, enter)
		*pivots++
	}
}

// chooseEntering returns the entering column by Bland's rule (smallest
// index with negative reduced cost), or −1 at optimality. Artificial
// columns never re-enter in phase 2.
func (t *tableau) chooseEntering() int {
	obj := t.a[t.rows]
	for j := 0; j < t.cols; j++ {
		if !t.phase1 && t.artCols[j] {
			continue
		}
		if obj[j] < -pivotTol {
			return j
		}
	}
	return -1
}

// chooseLeaving runs the minimum-ratio test on column `enter`, breaking
// ties by smallest basis index (Bland). Returns −1 when the column is
// unbounded.
func (t *tableau) chooseLeaving(enter int) int {
	best := -1
	bestRatio := math.Inf(1)
	for i := 0; i < t.rows; i++ {
		aij := t.a[i][enter]
		if aij <= pivotTol {
			continue
		}
		ratio := t.a[i][t.cols] / aij
		if ratio < bestRatio-zeroTol ||
			(math.Abs(ratio-bestRatio) <= zeroTol && best >= 0 && t.basis[i] < t.basis[best]) {
			bestRatio = ratio
			best = i
		}
	}
	return best
}

// pivot performs a Gauss–Jordan pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	pr := t.a[row]
	pv := pr[col]
	inv := 1 / pv
	for j := 0; j <= t.cols; j++ {
		pr[j] *= inv
	}
	pr[col] = 1 // exact
	for i := 0; i <= t.rows; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := 0; j <= t.cols; j++ {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0 // exact
	}
	t.basis[row] = col
}

// evictArtificials pivots zero-level artificial variables out of the
// basis after phase 1. A row whose non-artificial coefficients are all
// zero is redundant; its artificial stays basic at level zero, which is
// harmless because artificial columns are barred from phase-2 entry and
// the row can never change any structural value.
func (t *tableau) evictArtificials() error {
	for i := 0; i < t.rows; i++ {
		if !t.artCols[t.basis[i]] {
			continue
		}
		for j := 0; j < t.cols; j++ {
			if t.artCols[j] {
				continue
			}
			if math.Abs(t.a[i][j]) > pivotTol {
				t.pivot(i, j)
				break
			}
		}
	}
	return nil
}

// extractSolution reads structural variable values off the basis.
func (t *tableau) extractSolution(n int) []float64 {
	x := make([]float64, n)
	for i, b := range t.basis {
		if b < n {
			v := t.a[i][t.cols]
			if v < 0 && v > -zeroTol {
				v = 0 // clamp tiny negative noise
			}
			x[b] = v
		}
	}
	return x
}
