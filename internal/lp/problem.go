// Package lp implements a dense two-phase primal simplex solver for
// linear programs with non-negative variables, used to solve the paper's
// scapegoating optimizations (Eqs. 4, 8, 9): maximize the damage ‖m‖₁
// subject to linear state constraints on the tomography estimate.
//
// The solver supports ≤, ≥ and = constraints, arbitrary-sign right-hand
// sides, optional per-variable upper bounds, and reports infeasibility
// and unboundedness explicitly. Bland's rule guards against cycling.
// Problem sizes in this project are small (tens to a few hundred
// variables and constraints), so a dense tableau is the simplest robust
// choice.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the sense of a linear constraint.
type Relation int

// Constraint senses. Start at 1 so the zero value is invalid and misuse
// is caught by validation.
const (
	LE Relation = iota + 1 // Σ aⱼxⱼ ≤ b
	GE                     // Σ aⱼxⱼ ≥ b
	EQ                     // Σ aⱼxⱼ = b
)

// String returns the conventional symbol for the relation.
func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ErrBadProblem is returned when a problem is malformed (wrong
// coefficient count, unknown relation, negative variable count).
var ErrBadProblem = errors.New("lp: malformed problem")

// Constraint is one linear constraint over the problem variables.
type Constraint struct {
	// Coeffs holds one coefficient per variable; length must equal the
	// problem's NumVars.
	Coeffs []float64
	// Rel is the constraint sense.
	Rel Relation
	// RHS is the right-hand side, any sign.
	RHS float64
}

// Problem is a linear program over n non-negative variables:
//
//	maximize  cᵀx   (or minimize, per Minimize)
//	s.t.      constraints, 0 ≤ xⱼ ≤ upper[j]
type Problem struct {
	n           int
	objective   []float64
	minimize    bool
	constraints []Constraint
	upper       []float64 // +Inf when unbounded above
}

// NewProblem creates a maximization problem over n non-negative
// variables with a zero objective.
func NewProblem(n int) *Problem {
	upper := make([]float64, n)
	for i := range upper {
		upper[i] = math.Inf(1)
	}
	return &Problem{
		n:         n,
		objective: make([]float64, n),
		upper:     upper,
	}
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.n }

// SetObjective sets the objective coefficient vector. The slice is
// copied.
func (p *Problem) SetObjective(c []float64) error {
	if len(c) != p.n {
		return fmt.Errorf("lp: objective needs %d coefficients, got %d: %w", p.n, len(c), ErrBadProblem)
	}
	copy(p.objective, c)
	return nil
}

// SetObjectiveCoeff sets a single objective coefficient.
func (p *Problem) SetObjectiveCoeff(j int, c float64) error {
	if j < 0 || j >= p.n {
		return fmt.Errorf("lp: objective index %d out of range [0,%d): %w", j, p.n, ErrBadProblem)
	}
	p.objective[j] = c
	return nil
}

// Minimize switches the problem to minimization. The default is
// maximization.
func (p *Problem) Minimize() { p.minimize = true }

// SetUpperBound bounds variable j above: xⱼ ≤ u. Pass +Inf to remove a
// bound. Upper bounds are compiled to explicit ≤ rows at solve time.
func (p *Problem) SetUpperBound(j int, u float64) error {
	if j < 0 || j >= p.n {
		return fmt.Errorf("lp: bound index %d out of range [0,%d): %w", j, p.n, ErrBadProblem)
	}
	if math.IsNaN(u) || u < 0 {
		return fmt.Errorf("lp: bound %g for variable %d must be non-negative: %w", u, j, ErrBadProblem)
	}
	p.upper[j] = u
	return nil
}

// AddConstraint appends a constraint. Coefficients are copied.
func (p *Problem) AddConstraint(coeffs []float64, rel Relation, rhs float64) error {
	if len(coeffs) != p.n {
		return fmt.Errorf("lp: constraint needs %d coefficients, got %d: %w", p.n, len(coeffs), ErrBadProblem)
	}
	if rel != LE && rel != GE && rel != EQ {
		return fmt.Errorf("lp: unknown relation %v: %w", rel, ErrBadProblem)
	}
	if math.IsNaN(rhs) {
		return fmt.Errorf("lp: NaN right-hand side: %w", ErrBadProblem)
	}
	c := make([]float64, len(coeffs))
	copy(c, coeffs)
	p.constraints = append(p.constraints, Constraint{Coeffs: c, Rel: rel, RHS: rhs})
	return nil
}

// NumConstraints returns the number of explicit constraints (upper
// bounds excluded).
func (p *Problem) NumConstraints() int { return len(p.constraints) }

// ObjectiveCoeff returns the objective coefficient of variable j.
func (p *Problem) ObjectiveCoeff(j int) float64 { return p.objective[j] }

// UpperBound returns variable j's upper bound; ok is false when the
// variable is unbounded above.
func (p *Problem) UpperBound(j int) (u float64, ok bool) {
	u = p.upper[j]
	return u, !math.IsInf(u, 1)
}

// Constraints returns the explicit constraint rows. The slice and its
// coefficient vectors are shared, not copied — callers must not mutate
// them.
func (p *Problem) Constraints() []Constraint { return p.constraints }

// Solution is the result of solving a Problem.
type Solution struct {
	// Status reports whether an optimum was found.
	Status Status
	// X is the optimal assignment when Status == Optimal, nil otherwise.
	X []float64
	// Objective is the optimal objective value in the problem's own
	// sense (max or min) when Status == Optimal.
	Objective float64
	// Duals holds the simplex multipliers of the explicit constraints,
	// in the order they were added, when Status == Optimal. Sign
	// convention: the optimum equals Σ Duals[i]·RHS[i] + Σ
	// BoundDuals[j]·upper[j] (strong duality) in the problem's own
	// sense; for a maximization, ≤ rows have Duals ≥ 0 and ≥ rows
	// Duals ≤ 0.
	Duals []float64
	// BoundDuals holds the multiplier of each variable's upper-bound
	// row (zero entries for unbounded variables), aligned by variable
	// index.
	BoundDuals []float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
}

// Feasible reports whether the solution carries a feasible optimum.
func (s *Solution) Feasible() bool { return s != nil && s.Status == Optimal }
