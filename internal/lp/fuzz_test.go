package lp

import (
	"math"
	"testing"
)

// buildFuzzProblem decodes bytes into a small LP: the first byte fixes
// the variable count (1–4) and sense, the rest stream in as objective
// coefficients, optional upper bounds, and up to six constraints with
// byte-decoded coefficients. Returns nil when the bytes run out before a
// minimal problem forms.
func buildFuzzProblem(data []byte) *Problem {
	if len(data) < 3 {
		return nil
	}
	pos := 0
	next := func() (byte, bool) {
		if pos >= len(data) {
			return 0, false
		}
		b := data[pos]
		pos++
		return b, true
	}
	// Coefficients cover negatives, zeros, and fractional values.
	coef := func(b byte) float64 { return float64(int8(b)) / 4 }

	head, _ := next()
	n := int(head&0x03) + 1
	p := NewProblem(n)
	if head&0x04 != 0 {
		p.Minimize()
	}
	obj := make([]float64, n)
	for j := range obj {
		b, ok := next()
		if !ok {
			return nil
		}
		obj[j] = coef(b)
	}
	if err := p.SetObjective(obj); err != nil {
		return nil
	}
	if head&0x08 != 0 {
		for j := 0; j < n; j++ {
			b, ok := next()
			if !ok {
				break
			}
			if b%3 == 0 {
				continue // leave this variable unbounded above
			}
			if err := p.SetUpperBound(j, float64(b%32)); err != nil {
				return nil
			}
		}
	}
	rels := []Relation{LE, GE, EQ}
	for c := 0; c < 6; c++ {
		rb, ok := next()
		if !ok {
			break
		}
		coeffs := make([]float64, n)
		for j := range coeffs {
			b, ok := next()
			if !ok {
				return p
			}
			coeffs[j] = coef(b)
		}
		rhsB, ok := next()
		if !ok {
			return p
		}
		if err := p.AddConstraint(coeffs, rels[int(rb)%len(rels)], coef(rhsB)); err != nil {
			return nil
		}
	}
	return p
}

// FuzzSolve drives the simplex solver with random small LPs. The solver
// must never panic or loop forever, and any solution it labels Optimal
// must actually be feasible (non-negativity, upper bounds, every
// constraint) with the objective equal to c·x.
func FuzzSolve(f *testing.F) {
	f.Add([]byte{0x01, 0x04, 0xfc, 0x00, 0x04, 0xfc, 0x08})
	f.Add([]byte{0x07, 0x10, 0xf0, 0x20, 0x01, 0x04, 0x04, 0x04, 0x10})
	f.Add([]byte{0x0e, 0x08, 0x08, 0x08, 0x05, 0x07, 0x02, 0x01, 0x04, 0x00, 0x0c})
	f.Add([]byte{0x00, 0xff, 0x02, 0x80, 0x7f, 0x00, 0x01, 0x01, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			return // keep each case tiny; size adds nothing here
		}
		p := buildFuzzProblem(data)
		if p == nil {
			return
		}
		sol, err := Solve(p)
		if err != nil {
			return // infeasible/unbounded/cycle-limit are all legitimate
		}
		if sol.Status != Optimal {
			return
		}
		if len(sol.X) != p.NumVars() {
			t.Fatalf("optimal solution has %d vars, problem has %d", len(sol.X), p.NumVars())
		}
		const tol = 1e-6
		dot := 0.0
		for j, x := range sol.X {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("x[%d] = %v", j, x)
			}
			if x < -tol {
				t.Fatalf("x[%d] = %g violates x ≥ 0", j, x)
			}
			if u, ok := p.UpperBound(j); ok && x > u+tol {
				t.Fatalf("x[%d] = %g violates upper bound %g", j, x, u)
			}
			dot += p.ObjectiveCoeff(j) * x
		}
		if math.Abs(dot-sol.Objective) > tol*(1+math.Abs(dot)) {
			t.Fatalf("objective %g but c·x = %g", sol.Objective, dot)
		}
		for i, con := range p.Constraints() {
			lhs := 0.0
			for j, a := range con.Coeffs {
				lhs += a * sol.X[j]
			}
			switch con.Rel {
			case LE:
				if lhs > con.RHS+tol {
					t.Fatalf("constraint %d: %g ≤ %g violated", i, lhs, con.RHS)
				}
			case GE:
				if lhs < con.RHS-tol {
					t.Fatalf("constraint %d: %g ≥ %g violated", i, lhs, con.RHS)
				}
			case EQ:
				if math.Abs(lhs-con.RHS) > tol {
					t.Fatalf("constraint %d: %g = %g violated", i, lhs, con.RHS)
				}
			}
		}
	})
}
