package graph

import (
	"errors"
	"testing"
)

// line builds a path graph a–b–c–… for tests.
func line(t *testing.T, names ...string) *Graph {
	t.Helper()
	g := New()
	for _, n := range names {
		g.AddNode(n)
	}
	for i := 0; i+1 < len(names); i++ {
		if _, err := g.AddLink(NodeID(i), NodeID(i+1)); err != nil {
			t.Fatalf("AddLink: %v", err)
		}
	}
	return g
}

func TestAddNodeIdempotent(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	a2 := g.AddNode("a")
	if a != a2 {
		t.Errorf("AddNode twice gave %d and %d", a, a2)
	}
	if g.NumNodes() != 1 {
		t.Errorf("NumNodes = %d, want 1", g.NumNodes())
	}
}

func TestAddLink(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	id, err := g.AddLink(a, b)
	if err != nil {
		t.Fatalf("AddLink: %v", err)
	}
	l, err := g.Link(id)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	if !l.Has(a) || !l.Has(b) {
		t.Errorf("link endpoints = %d–%d, want a,b", l.A, l.B)
	}
	if l.Other(a) != b || l.Other(b) != a {
		t.Error("Other wrong")
	}
}

func TestAddLinkErrors(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	if _, err := g.AddLink(a, a); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self loop: err = %v", err)
	}
	if _, err := g.AddLink(a, 99); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown node: err = %v", err)
	}
	if _, err := g.AddLink(a, b); err != nil {
		t.Fatalf("AddLink: %v", err)
	}
	if _, err := g.AddLink(b, a); !errors.Is(err, ErrDuplicateLink) {
		t.Errorf("duplicate (reversed): err = %v", err)
	}
}

func TestLinkOtherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Other with non-endpoint did not panic")
		}
	}()
	Link{ID: 0, A: 1, B: 2}.Other(3)
}

func TestNeighborsDegreesIncidence(t *testing.T) {
	g := New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	ab, _ := g.AddLink(a, b)
	ac, _ := g.AddLink(a, c)
	if got := g.Degree(a); got != 2 {
		t.Errorf("Degree(a) = %d, want 2", got)
	}
	nbrs := g.Neighbors(a)
	if len(nbrs) != 2 || nbrs[0] != b || nbrs[1] != c {
		t.Errorf("Neighbors(a) = %v", nbrs)
	}
	inc := g.IncidentLinks(a)
	if len(inc) != 2 || inc[0] != ab || inc[1] != ac {
		t.Errorf("IncidentLinks(a) = %v", inc)
	}
	set := g.IncidentLinkSet([]NodeID{b, c})
	if !set[ab] || !set[ac] || len(set) != 2 {
		t.Errorf("IncidentLinkSet = %v", set)
	}
}

func TestLinkBetween(t *testing.T) {
	g := line(t, "a", "b", "c")
	if id, ok := g.LinkBetween(1, 0); !ok || id != 0 {
		t.Errorf("LinkBetween(1,0) = %d,%v", id, ok)
	}
	if _, ok := g.LinkBetween(0, 2); ok {
		t.Error("LinkBetween(0,2) found nonexistent link")
	}
}

func TestNodeLookup(t *testing.T) {
	g := line(t, "a", "b")
	name, err := g.NodeName(1)
	if err != nil || name != "b" {
		t.Errorf("NodeName(1) = %q, %v", name, err)
	}
	if _, err := g.NodeName(5); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("NodeName(5): err = %v", err)
	}
	if id, ok := g.NodeByName("a"); !ok || id != 0 {
		t.Errorf("NodeByName(a) = %d,%v", id, ok)
	}
	if _, ok := g.NodeByName("zzz"); ok {
		t.Error("NodeByName(zzz) found nonexistent node")
	}
	if _, err := g.Link(99); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("Link(99): err = %v", err)
	}
}

func TestLinksCopy(t *testing.T) {
	g := line(t, "a", "b", "c")
	ls := g.Links()
	if len(ls) != 2 {
		t.Fatalf("Links = %d, want 2", len(ls))
	}
	ls[0].A = 99
	l0, _ := g.Link(0)
	if l0.A == 99 {
		t.Error("Links exposes internal storage")
	}
}

func TestNodesAndSortedNames(t *testing.T) {
	g := line(t, "c", "a", "b")
	if got := g.Nodes(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("Nodes = %v", got)
	}
	names := g.SortedNames()
	if names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Errorf("SortedNames = %v", names)
	}
}
