package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseEdgeList drives the edge-list reader with arbitrary input.
// The parser must never panic, and any graph it accepts must survive a
// write → reparse round trip with identical node and link counts and
// the same adjacency.
func FuzzParseEdgeList(f *testing.F) {
	f.Add("a b\nb c\nc a\n")
	f.Add("# comment\n\nu v\nv w\nu v\n")
	f.Add("n0 n1")
	f.Add("x x\n")
	f.Add("one two three\n")
	f.Add("#\n # indented comment is a 3-field line\na\tb\n")
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		g, err := ParseEdgeList(strings.NewReader(input))
		if err != nil {
			return // malformed input is rejected, not parsed
		}
		if g.NumLinks() > 0 && g.NumNodes() < 2 {
			t.Fatalf("%d links with %d nodes", g.NumLinks(), g.NumNodes())
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write accepted graph: %v", err)
		}
		g2, err := ParseEdgeList(&buf)
		if err != nil {
			t.Fatalf("reparse own output: %v\noutput:\n%s", err, buf.String())
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumLinks() != g.NumLinks() {
			t.Fatalf("round trip changed size: %d/%d nodes, %d/%d links",
				g.NumNodes(), g2.NumNodes(), g.NumLinks(), g2.NumLinks())
		}
		for _, l := range g.Links() {
			an, err := g.NodeName(l.A)
			if err != nil {
				t.Fatalf("node name: %v", err)
			}
			bn, err := g.NodeName(l.B)
			if err != nil {
				t.Fatalf("node name: %v", err)
			}
			a2, ok := g2.NodeByName(an)
			if !ok {
				t.Fatalf("node %q lost in round trip", an)
			}
			b2, ok := g2.NodeByName(bn)
			if !ok {
				t.Fatalf("node %q lost in round trip", bn)
			}
			if _, ok := g2.LinkBetween(a2, b2); !ok {
				t.Fatalf("link %q–%q lost in round trip", an, bn)
			}
		}
	})
}
