package graph

// Connected reports whether the graph is connected. The empty graph is
// considered connected.
func Connected(g *Graph) bool {
	return len(Components(g)) <= 1
}

// Components returns the connected components as slices of node IDs in
// ascending order; components are ordered by their smallest node.
func Components(g *Graph) [][]NodeID {
	n := g.NumNodes()
	seen := make([]bool, n)
	var comps [][]NodeID
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		var comp []NodeID
		stack := []NodeID{NodeID(start)}
		seen[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, e := range g.adj[v] {
				if !seen[e.to] {
					seen[e.to] = true
					stack = append(stack, e.to)
				}
			}
		}
		sortNodeIDs(comp)
		comps = append(comps, comp)
	}
	return comps
}

// GiantComponent returns the subgraph induced by the largest connected
// component, together with a mapping from new node IDs to original ones.
// Wireless topology generation uses it to keep random geometric graphs
// usable when a draw is disconnected.
func GiantComponent(g *Graph) (*Graph, []NodeID) {
	comps := Components(g)
	if len(comps) == 0 {
		return New(), nil
	}
	best := comps[0]
	for _, c := range comps[1:] {
		if len(c) > len(best) {
			best = c
		}
	}
	sub := New()
	oldToNew := make(map[NodeID]NodeID, len(best))
	for _, v := range best {
		name, _ := g.NodeName(v)
		oldToNew[v] = sub.AddNode(name)
	}
	for _, l := range g.links {
		na, aok := oldToNew[l.A]
		nb, bok := oldToNew[l.B]
		if aok && bok {
			// Links of a simple graph restricted to a node subset stay
			// unique, so AddLink cannot fail here.
			if _, err := sub.AddLink(na, nb); err != nil {
				panic("graph: GiantComponent link insertion: " + err.Error())
			}
		}
	}
	return sub, best
}

func sortNodeIDs(ids []NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
