// Package graph provides the undirected network topology substrate for
// network tomography: graphs with identified links, path enumeration,
// shortest paths (BFS, Dijkstra, Yen's k-shortest), connectivity, and
// the random topology generators the paper's evaluation uses (random
// geometric graphs for wireless, preferential attachment for ISP-like
// wireline maps).
//
// Nodes and links are dense integer IDs, assigned in insertion order.
// Following the paper's model (Section II-A), graphs are simple: no
// self-loops and at most one link between a node pair.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node; IDs are dense indices from 0.
type NodeID int

// LinkID identifies an undirected link; IDs are dense indices from 0.
// The paper numbers links from 1 in prose; rendering code adds 1 when
// printing so figures match the paper.
type LinkID int

// ErrDuplicateLink is returned when adding a link that already exists.
var ErrDuplicateLink = errors.New("graph: duplicate link")

// ErrSelfLoop is returned when adding a link from a node to itself.
var ErrSelfLoop = errors.New("graph: self-loop")

// ErrUnknownNode is returned for out-of-range node IDs or names.
var ErrUnknownNode = errors.New("graph: unknown node")

// Link is an undirected edge between two nodes. A < B is not required;
// endpoints keep insertion order.
type Link struct {
	ID   LinkID
	A, B NodeID
}

// Other returns the endpoint of l that is not v. It panics if v is not
// an endpoint, which indicates a programming error in path code.
func (l Link) Other(v NodeID) NodeID {
	switch v {
	case l.A:
		return l.B
	case l.B:
		return l.A
	default:
		panic(fmt.Sprintf("graph: node %d is not an endpoint of link %d (%d–%d)", v, l.ID, l.A, l.B))
	}
}

// Has reports whether v is an endpoint of l.
func (l Link) Has(v NodeID) bool { return v == l.A || v == l.B }

type adjEntry struct {
	to   NodeID
	link LinkID
}

// Graph is a simple undirected graph with named nodes.
// The zero value is not usable; call New.
type Graph struct {
	names   []string
	nameIdx map[string]NodeID
	links   []Link
	adj     [][]adjEntry
	// linkIdx maps a canonical (min,max) node pair to the link ID.
	linkIdx map[[2]NodeID]LinkID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nameIdx: make(map[string]NodeID),
		linkIdx: make(map[[2]NodeID]LinkID),
	}
}

// AddNode adds a node with the given name and returns its ID. Adding a
// name twice returns the existing node's ID.
func (g *Graph) AddNode(name string) NodeID {
	if id, ok := g.nameIdx[name]; ok {
		return id
	}
	id := NodeID(len(g.names))
	g.names = append(g.names, name)
	g.nameIdx[name] = id
	g.adj = append(g.adj, nil)
	return id
}

// AddLink adds an undirected link between a and b and returns its ID.
func (g *Graph) AddLink(a, b NodeID) (LinkID, error) {
	if err := g.checkNode(a); err != nil {
		return 0, err
	}
	if err := g.checkNode(b); err != nil {
		return 0, err
	}
	if a == b {
		return 0, fmt.Errorf("graph: link %d–%d: %w", a, b, ErrSelfLoop)
	}
	key := canonical(a, b)
	if id, ok := g.linkIdx[key]; ok {
		return id, fmt.Errorf("graph: link %d–%d already exists as %d: %w", a, b, id, ErrDuplicateLink)
	}
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{ID: id, A: a, B: b})
	g.linkIdx[key] = id
	g.adj[a] = append(g.adj[a], adjEntry{to: b, link: id})
	g.adj[b] = append(g.adj[b], adjEntry{to: a, link: id})
	return id, nil
}

func canonical(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}

func (g *Graph) checkNode(v NodeID) error {
	if v < 0 || int(v) >= len(g.names) {
		return fmt.Errorf("graph: node %d out of range [0,%d): %w", v, len(g.names), ErrUnknownNode)
	}
	return nil
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.names) }

// NumLinks returns the link count.
func (g *Graph) NumLinks() int { return len(g.links) }

// NodeName returns the name of node v. Unknown IDs yield an error.
func (g *Graph) NodeName(v NodeID) (string, error) {
	if err := g.checkNode(v); err != nil {
		return "", err
	}
	return g.names[v], nil
}

// NodeByName looks a node up by name.
func (g *Graph) NodeByName(name string) (NodeID, bool) {
	id, ok := g.nameIdx[name]
	return id, ok
}

// Link returns the link with the given ID.
func (g *Graph) Link(id LinkID) (Link, error) {
	if id < 0 || int(id) >= len(g.links) {
		return Link{}, fmt.Errorf("graph: link %d out of range [0,%d): %w", id, len(g.links), ErrUnknownNode)
	}
	return g.links[id], nil
}

// Links returns a copy of all links in ID order.
func (g *Graph) Links() []Link {
	out := make([]Link, len(g.links))
	copy(out, g.links)
	return out
}

// LinkBetween returns the link joining a and b, if any.
func (g *Graph) LinkBetween(a, b NodeID) (LinkID, bool) {
	id, ok := g.linkIdx[canonical(a, b)]
	return id, ok
}

// Neighbors returns the neighbor node IDs of v in insertion order.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	if g.checkNode(v) != nil {
		return nil
	}
	out := make([]NodeID, len(g.adj[v]))
	for i, e := range g.adj[v] {
		out[i] = e.to
	}
	return out
}

// IncidentLinks returns the IDs of links incident to v.
func (g *Graph) IncidentLinks(v NodeID) []LinkID {
	if g.checkNode(v) != nil {
		return nil
	}
	out := make([]LinkID, len(g.adj[v]))
	for i, e := range g.adj[v] {
		out[i] = e.link
	}
	return out
}

// IncidentLinkSet returns the set of links incident to any node in vs.
// This is the paper's L_m: the links an attacker set controls.
func (g *Graph) IncidentLinkSet(vs []NodeID) map[LinkID]bool {
	set := make(map[LinkID]bool)
	for _, v := range vs {
		for _, l := range g.IncidentLinks(v) {
			set[l] = true
		}
	}
	return set
}

// Degree returns the number of links incident to v.
func (g *Graph) Degree(v NodeID) int {
	if g.checkNode(v) != nil {
		return 0
	}
	return len(g.adj[v])
}

// Nodes returns all node IDs in order.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, len(g.names))
	for i := range out {
		out[i] = NodeID(i)
	}
	return out
}

// SortedNames returns all node names sorted lexicographically; used by
// deterministic tooling output.
func (g *Graph) SortedNames() []string {
	out := make([]string, len(g.names))
	copy(out, g.names)
	sort.Strings(out)
	return out
}
