package graph

// ArticulationPoints returns the cut vertices of the graph: nodes whose
// removal increases the number of connected components (Tarjan's DFS
// low-link algorithm). A cut vertex separating a victim link from every
// monitor is the cheapest possible perfect-cut attacker, so these are
// natural first candidates for core.FindPerfectCutAttackers and for an
// operator auditing which single compromises would be catastrophic.
func ArticulationPoints(g *Graph) []NodeID {
	n := g.NumNodes()
	disc := make([]int, n) // discovery times, 0 = unvisited
	low := make([]int, n)  // low-link values
	isAP := make([]bool, n)
	timer := 0

	// Iterative DFS to avoid recursion limits on large graphs.
	type frame struct {
		v, parent NodeID
		childIdx  int
		children  int
	}
	for start := 0; start < n; start++ {
		if disc[start] != 0 {
			continue
		}
		timer++
		disc[start] = timer
		low[start] = timer
		stack := []frame{{v: NodeID(start), parent: -1}}
		rootChildren := 0
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.childIdx < len(g.adj[f.v]) {
				to := g.adj[f.v][f.childIdx].to
				f.childIdx++
				if disc[to] == 0 {
					timer++
					disc[to] = timer
					low[to] = timer
					if f.parent == -1 {
						rootChildren++
					}
					f.children++
					stack = append(stack, frame{v: to, parent: f.v})
				} else if to != f.parent {
					if disc[to] < low[f.v] {
						low[f.v] = disc[to]
					}
				}
				continue
			}
			// Post-order: propagate low-link to the parent.
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				p := &stack[len(stack)-1]
				if low[f.v] < low[p.v] {
					low[p.v] = low[f.v]
				}
				if p.parent != -1 && low[f.v] >= disc[p.v] {
					isAP[p.v] = true
				}
			}
		}
		if rootChildren > 1 {
			isAP[start] = true
		}
	}
	var out []NodeID
	for v, ap := range isAP {
		if ap {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// Bridges returns the cut edges of the graph: links whose removal
// disconnects their endpoints. A bridge on every path to a victim link
// is the link-level analogue of a perfect cut.
func Bridges(g *Graph) []LinkID {
	n := g.NumNodes()
	disc := make([]int, n)
	low := make([]int, n)
	timer := 0
	var out []LinkID

	type frame struct {
		v        NodeID
		viaLink  LinkID // link used to enter v (-1 for roots)
		childIdx int
	}
	for start := 0; start < n; start++ {
		if disc[start] != 0 {
			continue
		}
		timer++
		disc[start] = timer
		low[start] = timer
		stack := []frame{{v: NodeID(start), viaLink: -1}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.childIdx < len(g.adj[f.v]) {
				e := g.adj[f.v][f.childIdx]
				f.childIdx++
				if e.link == f.viaLink {
					continue // don't traverse the entry link backwards
				}
				if disc[e.to] == 0 {
					timer++
					disc[e.to] = timer
					low[e.to] = timer
					stack = append(stack, frame{v: e.to, viaLink: e.link})
				} else if disc[e.to] < low[f.v] {
					low[f.v] = disc[e.to]
				}
				continue
			}
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				p := &stack[len(stack)-1]
				if low[f.v] < low[p.v] {
					low[p.v] = low[f.v]
				}
				if low[f.v] > disc[p.v] {
					out = append(out, f.viaLink)
				}
			}
		}
	}
	sortLinkIDs(out)
	return out
}

func sortLinkIDs(ids []LinkID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
