package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBetweennessPath(t *testing.T) {
	// Line a–b–c–d: betweenness b = pairs routed through b = (a,c),(a,d)
	// = 2; c symmetric; endpoints 0.
	g := line(t, "a", "b", "c", "d")
	cb := BetweennessCentrality(g)
	want := []float64{0, 2, 2, 0}
	for i := range want {
		if math.Abs(cb[i]-want[i]) > 1e-12 {
			t.Errorf("cb[%d] = %g, want %g", i, cb[i], want[i])
		}
	}
}

func TestBetweennessStar(t *testing.T) {
	// Star with center 0 and 4 leaves: center carries all C(4,2) = 6
	// leaf pairs.
	g := New()
	c := g.AddNode("center")
	for i := 0; i < 4; i++ {
		leaf := g.AddNode(string(rune('a' + i)))
		if _, err := g.AddLink(c, leaf); err != nil {
			t.Fatal(err)
		}
	}
	cb := BetweennessCentrality(g)
	if math.Abs(cb[c]-6) > 1e-12 {
		t.Errorf("center betweenness = %g, want 6", cb[c])
	}
	for i := 1; i < 5; i++ {
		if cb[i] != 0 {
			t.Errorf("leaf %d betweenness = %g, want 0", i, cb[i])
		}
	}
}

func TestBetweennessCycleEvenSplit(t *testing.T) {
	// 4-cycle: each opposite pair has two shortest paths, each interior
	// node carries half of one pair → betweenness 0.5 per node.
	g := New()
	for i := 0; i < 4; i++ {
		g.AddNode(string(rune('a' + i)))
	}
	for i := 0; i < 4; i++ {
		if _, err := g.AddLink(NodeID(i), NodeID((i+1)%4)); err != nil {
			t.Fatal(err)
		}
	}
	cb := BetweennessCentrality(g)
	for i, v := range cb {
		if math.Abs(v-0.5) > 1e-12 {
			t.Errorf("cb[%d] = %g, want 0.5", i, v)
		}
	}
}

func TestBetweennessNonNegativeProperty(t *testing.T) {
	// Property: betweenness is non-negative, zero on degree-1 nodes,
	// and total betweenness equals Σ over connected pairs of
	// (d(s,t) − 1) where d is hop distance (each shortest path of
	// length ℓ contributes ℓ−1 interior slots).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := ErdosRenyi(3+rng.Intn(8), 0.5, rng)
		if err != nil {
			return false
		}
		cb := BetweennessCentrality(g)
		var total float64
		for v, c := range cb {
			if c < -1e-12 {
				return false
			}
			if g.Degree(NodeID(v)) == 1 && c > 1e-12 {
				return false
			}
			total += c
		}
		var want float64
		n := g.NumNodes()
		for s := 0; s < n; s++ {
			for t2 := s + 1; t2 < n; t2++ {
				p, err := ShortestPath(g, NodeID(s), NodeID(t2))
				if err != nil {
					continue
				}
				want += float64(p.Len() - 1)
			}
		}
		return math.Abs(total-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTopKByCentrality(t *testing.T) {
	g := line(t, "a", "b", "c", "d", "e")
	top := TopKByCentrality(g, 2)
	// Middle node c (index 2) has the highest betweenness on a line.
	if top[0] != 2 {
		t.Errorf("top node = %d, want 2", top[0])
	}
	if len(top) != 2 {
		t.Errorf("len = %d", len(top))
	}
	all := TopKByCentrality(g, 99)
	if len(all) != 5 {
		t.Errorf("k beyond n: len = %d", len(all))
	}
}
