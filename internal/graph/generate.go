package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a 2-D node position used by the geometric generators.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// RandomGeometric builds a random geometric graph: n nodes uniform on
// the square [0,size]², linked when within radius. This is the paper's
// wireless model (Section V-C): 100 nodes at density λ=5 on
// [0, √(100/λ)]² with radius chosen for ~5 average neighbors.
// Node names are "w0", "w1", …
func RandomGeometric(n int, size, radius float64, rng *rand.Rand) (*Graph, []Point, error) {
	if n <= 0 || size <= 0 || radius <= 0 {
		return nil, nil, fmt.Errorf("graph: RandomGeometric(n=%d, size=%g, radius=%g): parameters must be positive", n, size, radius)
	}
	g := New()
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("w%d", i))
		pts[i] = Point{X: rng.Float64() * size, Y: rng.Float64() * size}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pts[i].Dist(pts[j]) <= radius {
				if _, err := g.AddLink(NodeID(i), NodeID(j)); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	return g, pts, nil
}

// GeometricRadiusForDegree returns the connection radius giving the
// requested expected neighbor count at node density λ (per unit area):
// E[deg] = λπr² ⇒ r = √(deg/(λπ)).
func GeometricRadiusForDegree(density, avgDegree float64) float64 {
	return math.Sqrt(avgDegree / (density * math.Pi))
}

// BarabasiAlbert builds a preferential-attachment graph: it starts from
// a small clique and attaches each new node to m distinct existing nodes
// with probability proportional to degree. This produces the heavy-tailed
// degree distribution characteristic of Rocketfuel ISP router maps and
// stands in for the AS1221 dataset (see DESIGN.md §5).
// Node names are "r0", "r1", …
func BarabasiAlbert(n, m int, rng *rand.Rand) (*Graph, error) {
	if m < 1 || n < m+1 {
		return nil, fmt.Errorf("graph: BarabasiAlbert(n=%d, m=%d): need n ≥ m+1 ≥ 2", n, m)
	}
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("r%d", i))
	}
	// Seed clique over the first m+1 nodes.
	var stubs []NodeID // node repeated once per incident link (degree list)
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			if _, err := g.AddLink(NodeID(i), NodeID(j)); err != nil {
				return nil, err
			}
			stubs = append(stubs, NodeID(i), NodeID(j))
		}
	}
	for v := m + 1; v < n; v++ {
		chosen := make(map[NodeID]bool, m)
		for len(chosen) < m {
			t := stubs[rng.Intn(len(stubs))]
			if int(t) == v || chosen[t] {
				continue
			}
			chosen[t] = true
		}
		targets := make([]NodeID, 0, m)
		for t := range chosen {
			targets = append(targets, t)
		}
		sortNodeIDs(targets) // map order is random; keep output deterministic
		for _, t := range targets {
			if _, err := g.AddLink(NodeID(v), t); err != nil {
				return nil, err
			}
			stubs = append(stubs, NodeID(v), t)
		}
	}
	return g, nil
}

// ErdosRenyi builds a G(n, p) random graph. Node names are "n0", "n1", …
func ErdosRenyi(n int, p float64, rng *rand.Rand) (*Graph, error) {
	if n <= 0 || p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: ErdosRenyi(n=%d, p=%g): need n > 0, p in [0,1]", n, p)
	}
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("n%d", i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				if _, err := g.AddLink(NodeID(i), NodeID(j)); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// Waxman builds a Waxman random graph on the unit square: nodes i,j are
// linked with probability α·exp(−d(i,j)/(β·D)) where D is the maximum
// node distance. A classic synthetic-Internet model, offered as an
// alternative wireline substrate. Node names are "x0", "x1", …
func Waxman(n int, alpha, beta float64, rng *rand.Rand) (*Graph, []Point, error) {
	if n <= 0 || alpha <= 0 || alpha > 1 || beta <= 0 {
		return nil, nil, fmt.Errorf("graph: Waxman(n=%d, α=%g, β=%g): need n > 0, α in (0,1], β > 0", n, alpha, beta)
	}
	g := New()
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("x%d", i))
		pts[i] = Point{X: rng.Float64(), Y: rng.Float64()}
	}
	var maxD float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := pts[i].Dist(pts[j]); d > maxD {
				maxD = d
			}
		}
	}
	if maxD == 0 {
		maxD = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := alpha * math.Exp(-pts[i].Dist(pts[j])/(beta*maxD))
			if rng.Float64() < p {
				if _, err := g.AddLink(NodeID(i), NodeID(j)); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	return g, pts, nil
}
