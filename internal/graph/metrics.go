package graph

// Metrics summarizes a topology's structure: size, degree statistics,
// distance statistics and clustering. The topology generators are
// validated against these (a BA graph must look heavy-tailed and
// small-world; an RGG must not), and topogen -stats prints them so
// users can sanity-check custom maps before running experiments.
type Metrics struct {
	Nodes, Links int
	MinDegree    int
	MaxDegree    int
	MeanDegree   float64
	// Diameter is the longest shortest path (hops) within the largest
	// component.
	Diameter int
	// MeanDistance is the average shortest-path length over connected
	// pairs.
	MeanDistance float64
	// ClusteringCoeff is the global clustering coefficient:
	// 3·triangles / connected triples.
	ClusteringCoeff float64
	// Components is the number of connected components.
	Components int
}

// ComputeMetrics measures g. It runs a BFS per node (O(V·E)) and a
// triangle count (O(Σ deg²)), fine for the hundreds-of-nodes topologies
// this project uses.
func ComputeMetrics(g *Graph) Metrics {
	n := g.NumNodes()
	m := Metrics{Nodes: n, Links: g.NumLinks(), Components: len(Components(g))}
	if n == 0 {
		return m
	}
	m.MinDegree = g.Degree(0)
	for _, v := range g.Nodes() {
		d := g.Degree(v)
		if d < m.MinDegree {
			m.MinDegree = d
		}
		if d > m.MaxDegree {
			m.MaxDegree = d
		}
	}
	m.MeanDegree = 2 * float64(g.NumLinks()) / float64(n)

	// Distance statistics by BFS from every node.
	var distSum float64
	var pairCount int
	dist := make([]int, n)
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue := []NodeID{NodeID(s)}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, e := range g.adj[v] {
				if dist[e.to] < 0 {
					dist[e.to] = dist[v] + 1
					queue = append(queue, e.to)
				}
			}
		}
		for t := s + 1; t < n; t++ {
			if dist[t] > 0 {
				distSum += float64(dist[t])
				pairCount++
				if dist[t] > m.Diameter {
					m.Diameter = dist[t]
				}
			}
		}
	}
	if pairCount > 0 {
		m.MeanDistance = distSum / float64(pairCount)
	}

	// Global clustering: count triangles and connected triples.
	neighbor := make([]map[NodeID]bool, n)
	for v := 0; v < n; v++ {
		neighbor[v] = make(map[NodeID]bool, len(g.adj[v]))
		for _, e := range g.adj[NodeID(v)] {
			neighbor[v][e.to] = true
		}
	}
	var triangles, triples int
	for v := 0; v < n; v++ {
		d := len(g.adj[NodeID(v)])
		triples += d * (d - 1) / 2
		adj := g.adj[NodeID(v)]
		for i := 0; i < len(adj); i++ {
			for j := i + 1; j < len(adj); j++ {
				if neighbor[adj[i].to][adj[j].to] {
					triangles++ // counted once per corner → 3 per triangle
				}
			}
		}
	}
	if triples > 0 {
		m.ClusteringCoeff = float64(triangles) / float64(triples)
	}
	return m
}
