package graph

import (
	"errors"
	"fmt"
	"sort"
)

// KShortestPaths returns up to k loopless shortest paths (by hop count)
// from src to dst using Yen's algorithm over BFS shortest paths. Results
// are ordered by increasing length, ties broken by lexicographic node
// sequence, so output is deterministic.
//
// Tomography path selection uses this to gather a diverse candidate pool
// between each monitor pair without enumerating the exponential set of
// all simple paths on large topologies.
func KShortestPaths(g *Graph, src, dst NodeID, k int) ([]Path, error) {
	if k <= 0 {
		return nil, fmt.Errorf("graph: KShortestPaths with k=%d", k)
	}
	first, err := ShortestPath(g, src, dst)
	if err != nil {
		return nil, err
	}
	accepted := []Path{first}
	var candidates []Path

	for len(accepted) < k {
		prev := accepted[len(accepted)-1]
		// Each node on the previous path (except the last) is a spur.
		for i := 0; i < len(prev.Nodes)-1; i++ {
			spur := prev.Nodes[i]
			root := Path{
				Nodes: append([]NodeID(nil), prev.Nodes[:i+1]...),
				Links: append([]LinkID(nil), prev.Links[:i]...),
			}
			// Links to hide: the next link of every accepted path
			// sharing this root.
			banLinks := make(map[LinkID]bool)
			for _, p := range accepted {
				if sharesRoot(p, root) && i < len(p.Links) {
					banLinks[p.Links[i]] = true
				}
			}
			// Nodes on the root (except the spur) are off-limits to
			// keep paths loopless.
			banNodes := make(map[NodeID]bool)
			for _, v := range root.Nodes[:len(root.Nodes)-1] {
				banNodes[v] = true
			}
			spurPath, err := shortestPathFiltered(g, spur, dst, banNodes, banLinks)
			if err != nil {
				if errors.Is(err, ErrNoPath) {
					continue
				}
				return nil, err
			}
			total := Path{
				Nodes: append(append([]NodeID(nil), root.Nodes[:len(root.Nodes)-1]...), spurPath.Nodes...),
				Links: append(append([]LinkID(nil), root.Links...), spurPath.Links...),
			}
			if !containsPath(candidates, total) && !containsPath(accepted, total) {
				candidates = append(candidates, total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool {
			return lessPath(candidates[a], candidates[b])
		})
		accepted = append(accepted, candidates[0])
		candidates = candidates[1:]
	}
	return accepted, nil
}

func sharesRoot(p, root Path) bool {
	if len(p.Nodes) < len(root.Nodes) {
		return false
	}
	for i, v := range root.Nodes {
		if p.Nodes[i] != v {
			return false
		}
	}
	for i, l := range root.Links {
		if p.Links[i] != l {
			return false
		}
	}
	return true
}

func containsPath(list []Path, p Path) bool {
	for _, q := range list {
		if q.Equal(p) {
			return true
		}
	}
	return false
}

func lessPath(a, b Path) bool {
	if a.Len() != b.Len() {
		return a.Len() < b.Len()
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return a.Nodes[i] < b.Nodes[i]
		}
	}
	return false
}

// shortestPathFiltered is BFS that ignores banned nodes and links.
func shortestPathFiltered(g *Graph, src, dst NodeID, banNodes map[NodeID]bool, banLinks map[LinkID]bool) (Path, error) {
	if banNodes[src] || banNodes[dst] {
		return Path{}, fmt.Errorf("graph: endpoint banned: %w", ErrNoPath)
	}
	preds := make(map[NodeID]pred)
	visited := map[NodeID]bool{src: true}
	queue := []NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[v] {
			if visited[e.to] || banNodes[e.to] || banLinks[e.link] {
				continue
			}
			visited[e.to] = true
			preds[e.to] = pred{node: v, link: e.link}
			if e.to == dst {
				return rebuild(src, dst, preds), nil
			}
			queue = append(queue, e.to)
		}
	}
	return Path{}, fmt.Errorf("graph: filtered search %d→%d: %w", src, dst, ErrNoPath)
}
