package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestArticulationPointsLine(t *testing.T) {
	// a–b–c–d: b and c are cut vertices.
	g := line(t, "a", "b", "c", "d")
	aps := ArticulationPoints(g)
	if len(aps) != 2 || aps[0] != 1 || aps[1] != 2 {
		t.Errorf("articulation points = %v, want [1 2]", aps)
	}
}

func TestArticulationPointsCycle(t *testing.T) {
	// A cycle has no cut vertex.
	g := New()
	for i := 0; i < 5; i++ {
		g.AddNode(string(rune('a' + i)))
	}
	for i := 0; i < 5; i++ {
		mustLink(t, g, NodeID(i), NodeID((i+1)%5))
	}
	if aps := ArticulationPoints(g); len(aps) != 0 {
		t.Errorf("cycle articulation points = %v, want none", aps)
	}
}

func TestArticulationPointsTwoTriangles(t *testing.T) {
	// Two triangles sharing node 0: node 0 is the only cut vertex.
	g := New()
	for i := 0; i < 5; i++ {
		g.AddNode(string(rune('a' + i)))
	}
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {2, 0}, {0, 3}, {3, 4}, {4, 0}} {
		mustLink(t, g, e[0], e[1])
	}
	aps := ArticulationPoints(g)
	if len(aps) != 1 || aps[0] != 0 {
		t.Errorf("articulation points = %v, want [0]", aps)
	}
}

func TestBridgesLine(t *testing.T) {
	// Every link of a line is a bridge.
	g := line(t, "a", "b", "c", "d")
	br := Bridges(g)
	if len(br) != 3 {
		t.Errorf("bridges = %v, want all 3 links", br)
	}
}

func TestBridgesCycleWithTail(t *testing.T) {
	// Triangle 0-1-2 plus tail 2–3: only the tail link is a bridge.
	g := New()
	for i := 0; i < 4; i++ {
		g.AddNode(string(rune('a' + i)))
	}
	mustLink(t, g, 0, 1)
	mustLink(t, g, 1, 2)
	mustLink(t, g, 2, 0)
	tail := mustLink(t, g, 2, 3)
	br := Bridges(g)
	if len(br) != 1 || br[0] != tail {
		t.Errorf("bridges = %v, want [%d]", br, tail)
	}
}

// bruteforceAPs removes each node and counts components among the rest.
func bruteforceAPs(g *Graph) map[NodeID]bool {
	base := len(Components(g))
	out := make(map[NodeID]bool)
	n := g.NumNodes()
	for skip := 0; skip < n; skip++ {
		sub := New()
		ids := make(map[NodeID]NodeID)
		for v := 0; v < n; v++ {
			if v == skip {
				continue
			}
			name, _ := g.NodeName(NodeID(v))
			ids[NodeID(v)] = sub.AddNode(name)
		}
		for _, l := range g.Links() {
			a, aok := ids[l.A]
			b, bok := ids[l.B]
			if aok && bok {
				if _, err := sub.AddLink(a, b); err != nil {
					panic(err)
				}
			}
		}
		// Removing an isolated node reduces components; removing a cut
		// vertex increases them among the remaining nodes.
		if g.Degree(NodeID(skip)) > 0 && len(Components(sub)) > base {
			out[NodeID(skip)] = true
		}
	}
	return out
}

func TestArticulationPointsMatchBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := ErdosRenyi(3+rng.Intn(9), 0.35, rng)
		if err != nil {
			return false
		}
		want := bruteforceAPs(g)
		got := ArticulationPoints(g)
		if len(got) != len(want) {
			return false
		}
		for _, v := range got {
			if !want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBridgesMatchBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := ErdosRenyi(3+rng.Intn(9), 0.35, rng)
		if err != nil {
			return false
		}
		base := len(Components(g))
		want := make(map[LinkID]bool)
		for _, l := range g.Links() {
			sub := New()
			for v := 0; v < g.NumNodes(); v++ {
				name, _ := g.NodeName(NodeID(v))
				sub.AddNode(name)
			}
			for _, l2 := range g.Links() {
				if l2.ID == l.ID {
					continue
				}
				if _, err := sub.AddLink(l2.A, l2.B); err != nil {
					return false
				}
			}
			if len(Components(sub)) > base {
				want[l.ID] = true
			}
		}
		got := Bridges(g)
		if len(got) != len(want) {
			return false
		}
		for _, l := range got {
			if !want[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBridgesFig1Like(t *testing.T) {
	// BA graphs with m ≥ 2 have no bridges among non-seed nodes… just
	// assert the call runs and returns sorted output on a real topology.
	rng := rand.New(rand.NewSource(3))
	g, err := BarabasiAlbert(40, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	br := Bridges(g)
	for i := 1; i < len(br); i++ {
		if br[i] < br[i-1] {
			t.Fatal("bridges unsorted")
		}
	}
}
