package graph

// BetweennessCentrality computes node betweenness via Brandes'
// algorithm on the unweighted graph: for each node v, the sum over
// source–target pairs (s, t) of the fraction of shortest s–t paths that
// pass through v (endpoints excluded). The attack-placement study uses
// it as a proxy for how many measurement paths a compromised node is
// likely to sit on.
//
// Values are raw (unnormalized) and symmetric pairs are counted once.
func BetweennessCentrality(g *Graph) []float64 {
	n := g.NumNodes()
	cb := make([]float64, n)
	// Reusable per-source buffers.
	var (
		stack []NodeID
		preds = make([][]NodeID, n)
		sigma = make([]float64, n) // shortest-path counts
		dist  = make([]int, n)
		delta = make([]float64, n)
	)
	for s := 0; s < n; s++ {
		stack = stack[:0]
		for i := 0; i < n; i++ {
			preds[i] = preds[i][:0]
			sigma[i] = 0
			dist[i] = -1
			delta[i] = 0
		}
		src := NodeID(s)
		sigma[src] = 1
		dist[src] = 0
		queue := []NodeID{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			stack = append(stack, v)
			for _, e := range g.adj[v] {
				w := e.to
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		// Accumulation in reverse BFS order.
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != src {
				cb[w] += delta[w]
			}
		}
	}
	// Each unordered pair was counted twice (once per endpoint as
	// source); halve for the undirected convention.
	for i := range cb {
		cb[i] /= 2
	}
	return cb
}

// TopKByCentrality returns the k nodes with the highest betweenness, in
// descending order (ties broken by node ID for determinism).
func TopKByCentrality(g *Graph, k int) []NodeID {
	cb := BetweennessCentrality(g)
	ids := g.Nodes()
	// Insertion sort by (centrality desc, id asc) — n is small.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0; j-- {
			a, b := ids[j-1], ids[j]
			if cb[b] > cb[a] || (cb[b] == cb[a] && b < a) {
				ids[j-1], ids[j] = ids[j], ids[j-1]
			} else {
				break
			}
		}
	}
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}
