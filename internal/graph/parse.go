package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ParseEdgeList reads a graph from a whitespace-separated edge list:
// one "nameA nameB" pair per line. Blank lines and lines starting with
// '#' are skipped. Node IDs are assigned in first-appearance order, so
// parsing is deterministic. Real topology files (e.g. Rocketfuel maps
// exported as edge lists) load through this reader.
func ParseEdgeList(r io.Reader) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		if fields[0] == fields[1] {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, ErrSelfLoop)
		}
		a := g.AddNode(fields[0])
		b := g.AddNode(fields[1])
		if _, ok := g.LinkBetween(a, b); ok {
			continue // tolerate repeated edges in input files
		}
		if _, err := g.AddLink(a, b); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return g, nil
}

// WriteEdgeList writes the graph as a parseable edge list, links in ID
// order, with a leading comment carrying node/link counts.
func WriteEdgeList(w io.Writer, g *Graph) error {
	if _, err := fmt.Fprintf(w, "# %d nodes, %d links\n", g.NumNodes(), g.NumLinks()); err != nil {
		return fmt.Errorf("graph: writing edge list: %w", err)
	}
	for _, l := range g.links {
		an, err := g.NodeName(l.A)
		if err != nil {
			return err
		}
		bn, err := g.NodeName(l.B)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", an, bn); err != nil {
			return fmt.Errorf("graph: writing edge list: %w", err)
		}
	}
	return nil
}

// DegreeHistogram returns degree → node count, plus the sorted list of
// distinct degrees; used by topology diagnostics and tests asserting
// heavy-tailed ISP-like shape.
func DegreeHistogram(g *Graph) (map[int]int, []int) {
	hist := make(map[int]int)
	for _, v := range g.Nodes() {
		hist[g.Degree(v)]++
	}
	degrees := make([]int, 0, len(hist))
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	return hist, degrees
}
