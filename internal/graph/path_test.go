package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond builds the 4-node graph a–b, a–c, b–d, c–d, b–c.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	for _, n := range []string{"a", "b", "c", "d"} {
		g.AddNode(n)
	}
	for _, e := range [][2]NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {1, 2}} {
		if _, err := g.AddLink(e[0], e[1]); err != nil {
			t.Fatalf("AddLink: %v", err)
		}
	}
	return g
}

func TestShortestPathLine(t *testing.T) {
	g := line(t, "a", "b", "c", "d")
	p, err := ShortestPath(g, 0, 3)
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	if p.Len() != 3 {
		t.Errorf("Len = %d, want 3", p.Len())
	}
	if err := p.Validate(g); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if p.Src() != 0 || p.Dst() != 3 {
		t.Errorf("endpoints = %d,%d", p.Src(), p.Dst())
	}
}

func TestShortestPathPicksShorter(t *testing.T) {
	g := diamond(t)
	p, err := ShortestPath(g, 0, 3)
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2", p.Len())
	}
}

func TestShortestPathErrors(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	if _, err := ShortestPath(g, a, b); !errors.Is(err, ErrNoPath) {
		t.Errorf("disconnected: err = %v", err)
	}
	if _, err := ShortestPath(g, a, a); !errors.Is(err, ErrNoPath) {
		t.Errorf("self: err = %v", err)
	}
	if _, err := ShortestPath(g, a, 99); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown: err = %v", err)
	}
}

func TestSimplePathsDiamond(t *testing.T) {
	g := diamond(t)
	paths, err := SimplePaths(g, 0, 3, 0, 0)
	if err != nil {
		t.Fatalf("SimplePaths: %v", err)
	}
	// a→b→d, a→c→d, a→b→c→d, a→c→b→d.
	if len(paths) != 4 {
		t.Fatalf("found %d paths, want 4", len(paths))
	}
	for _, p := range paths {
		if err := p.Validate(g); err != nil {
			t.Errorf("path %v invalid: %v", p.Nodes, err)
		}
		if p.Src() != 0 || p.Dst() != 3 {
			t.Errorf("path endpoints %d→%d", p.Src(), p.Dst())
		}
	}
}

func TestSimplePathsMaxHops(t *testing.T) {
	g := diamond(t)
	paths, err := SimplePaths(g, 0, 3, 2, 0)
	if err != nil {
		t.Fatalf("SimplePaths: %v", err)
	}
	if len(paths) != 2 {
		t.Errorf("found %d paths within 2 hops, want 2", len(paths))
	}
}

func TestSimplePathsMaxPaths(t *testing.T) {
	g := diamond(t)
	paths, err := SimplePaths(g, 0, 3, 0, 3)
	if err != nil {
		t.Fatalf("SimplePaths: %v", err)
	}
	if len(paths) != 3 {
		t.Errorf("found %d paths with cap 3, want 3", len(paths))
	}
}

func TestSimplePathsNoPath(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	if _, err := SimplePaths(g, a, b, 0, 0); !errors.Is(err, ErrNoPath) {
		t.Errorf("err = %v, want ErrNoPath", err)
	}
}

func TestPathPredicates(t *testing.T) {
	g := diamond(t)
	p, _ := ShortestPath(g, 0, 3)
	if !p.HasNode(0) || p.HasNode(99) {
		t.Error("HasNode wrong")
	}
	if !p.HasAnyNode(map[NodeID]bool{0: true}) || p.HasAnyNode(map[NodeID]bool{99: true}) {
		t.Error("HasAnyNode wrong")
	}
	if !p.HasLink(p.Links[0]) || p.HasLink(99) {
		t.Error("HasLink wrong")
	}
	if !p.HasAnyLink(map[LinkID]bool{p.Links[0]: true}) || p.HasAnyLink(map[LinkID]bool{99: true}) {
		t.Error("HasAnyLink wrong")
	}
}

func TestPathCloneEqual(t *testing.T) {
	g := diamond(t)
	p, _ := ShortestPath(g, 0, 3)
	q := p.Clone()
	if !p.Equal(q) {
		t.Error("clone not Equal")
	}
	q.Nodes[0] = 2
	if p.Nodes[0] == 2 {
		t.Error("Clone shares storage")
	}
	if p.Equal(q) {
		t.Error("Equal ignores node difference")
	}
}

func TestPathValidateRejects(t *testing.T) {
	g := diamond(t)
	bad := Path{Nodes: []NodeID{0, 1}, Links: []LinkID{}}
	if err := bad.Validate(g); err == nil {
		t.Error("length mismatch accepted")
	}
	empty := Path{}
	if err := empty.Validate(g); err == nil {
		t.Error("empty path accepted")
	}
	lid, _ := g.LinkBetween(0, 1)
	revisit := Path{Nodes: []NodeID{0, 1, 0}, Links: []LinkID{lid, lid}}
	if err := revisit.Validate(g); err == nil {
		t.Error("revisiting path accepted")
	}
	wrongLink, _ := g.LinkBetween(2, 3)
	mismatch := Path{Nodes: []NodeID{0, 1}, Links: []LinkID{wrongLink}}
	if err := mismatch.Validate(g); err == nil {
		t.Error("mismatched link accepted")
	}
}

func TestPathFormat(t *testing.T) {
	g := line(t, "a", "b")
	p, _ := ShortestPath(g, 0, 1)
	if got := p.Format(g); got != "a→b" {
		t.Errorf("Format = %q", got)
	}
	if got := p.Format(nil); got != "0→1" {
		t.Errorf("Format(nil) = %q", got)
	}
}

func TestKShortestPathsDiamond(t *testing.T) {
	g := diamond(t)
	paths, err := KShortestPaths(g, 0, 3, 4)
	if err != nil {
		t.Fatalf("KShortestPaths: %v", err)
	}
	if len(paths) != 4 {
		t.Fatalf("got %d paths, want 4", len(paths))
	}
	// Non-decreasing lengths, all valid, all distinct.
	for i, p := range paths {
		if err := p.Validate(g); err != nil {
			t.Errorf("path %d invalid: %v", i, err)
		}
		if i > 0 && p.Len() < paths[i-1].Len() {
			t.Errorf("paths not sorted by length at %d", i)
		}
		for j := 0; j < i; j++ {
			if p.Equal(paths[j]) {
				t.Errorf("paths %d and %d identical", i, j)
			}
		}
	}
	if paths[0].Len() != 2 || paths[1].Len() != 2 {
		t.Error("two 2-hop paths expected first")
	}
}

func TestKShortestPathsFewerAvailable(t *testing.T) {
	g := line(t, "a", "b", "c")
	paths, err := KShortestPaths(g, 0, 2, 5)
	if err != nil {
		t.Fatalf("KShortestPaths: %v", err)
	}
	if len(paths) != 1 {
		t.Errorf("got %d paths on a line, want 1", len(paths))
	}
}

func TestKShortestPathsBadK(t *testing.T) {
	g := line(t, "a", "b")
	if _, err := KShortestPaths(g, 0, 1, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestKShortestMatchesSimplePathsProperty(t *testing.T) {
	// Property: on random connected graphs, KShortestPaths(k=all) finds
	// exactly the simple paths found by exhaustive DFS (as sets of
	// lengths), and each result is simple and valid.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(4)
		g, err := ErdosRenyi(n, 0.5, rng)
		if err != nil {
			return false
		}
		if !Connected(g) {
			return true // skip disconnected draws
		}
		src, dst := NodeID(0), NodeID(n-1)
		all, err := SimplePaths(g, src, dst, 0, 0)
		if errors.Is(err, ErrNoPath) {
			return true
		}
		if err != nil {
			return false
		}
		ks, err := KShortestPaths(g, src, dst, len(all))
		if err != nil {
			return false
		}
		if len(ks) != len(all) {
			return false
		}
		for _, p := range ks {
			if p.Validate(g) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
