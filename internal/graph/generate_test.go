package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRandomGeometric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, pts, err := RandomGeometric(100, 4.47, 0.6, rng)
	if err != nil {
		t.Fatalf("RandomGeometric: %v", err)
	}
	if g.NumNodes() != 100 || len(pts) != 100 {
		t.Fatalf("nodes = %d, points = %d", g.NumNodes(), len(pts))
	}
	// Every link joins nodes within the radius; every non-link pair is
	// farther apart.
	for _, l := range g.Links() {
		if pts[l.A].Dist(pts[l.B]) > 0.6 {
			t.Errorf("link %d joins distant nodes", l.ID)
		}
	}
	for i := 0; i < 100; i++ {
		for j := i + 1; j < 100; j++ {
			if _, ok := g.LinkBetween(NodeID(i), NodeID(j)); !ok {
				if pts[i].Dist(pts[j]) <= 0.6 {
					t.Fatalf("nodes %d,%d within radius but unlinked", i, j)
				}
			}
		}
	}
}

func TestRandomGeometricBadArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, args := range [][3]float64{{0, 1, 1}, {5, 0, 1}, {5, 1, 0}} {
		if _, _, err := RandomGeometric(int(args[0]), args[1], args[2], rng); err == nil {
			t.Errorf("RandomGeometric(%v) accepted", args)
		}
	}
}

func TestGeometricRadiusForDegree(t *testing.T) {
	// λπr² = 5 with λ = 5 ⇒ r = 1/√π ≈ 0.5642.
	r := GeometricRadiusForDegree(5, 5)
	if r < 0.56 || r > 0.57 {
		t.Errorf("radius = %g, want ≈ 0.564", r)
	}
}

func TestBarabasiAlbert(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := BarabasiAlbert(104, 3, rng)
	if err != nil {
		t.Fatalf("BarabasiAlbert: %v", err)
	}
	if g.NumNodes() != 104 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Links: seed clique C(4,2)=6 plus 3 per added node.
	want := 6 + 3*(104-4)
	if g.NumLinks() != want {
		t.Errorf("links = %d, want %d", g.NumLinks(), want)
	}
	if !Connected(g) {
		t.Error("BA graph disconnected")
	}
	// Heavy tail: max degree should far exceed the mean.
	var maxDeg int
	for _, v := range g.Nodes() {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	mean := 2.0 * float64(g.NumLinks()) / float64(g.NumNodes())
	if float64(maxDeg) < 2*mean {
		t.Errorf("max degree %d not heavy-tailed (mean %.1f)", maxDeg, mean)
	}
}

func TestBarabasiAlbertBadArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := BarabasiAlbert(3, 3, rng); err == nil {
		t.Error("n ≤ m accepted")
	}
	if _, err := BarabasiAlbert(5, 0, rng); err == nil {
		t.Error("m = 0 accepted")
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := ErdosRenyi(10, 1, rng)
	if err != nil {
		t.Fatalf("ErdosRenyi: %v", err)
	}
	if g.NumLinks() != 45 {
		t.Errorf("p=1 links = %d, want 45", g.NumLinks())
	}
	g, err = ErdosRenyi(10, 0, rng)
	if err != nil {
		t.Fatalf("ErdosRenyi: %v", err)
	}
	if g.NumLinks() != 0 {
		t.Errorf("p=0 links = %d, want 0", g.NumLinks())
	}
	if _, err := ErdosRenyi(0, 0.5, rng); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := ErdosRenyi(5, 1.5, rng); err == nil {
		t.Error("p>1 accepted")
	}
}

func TestWaxman(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, pts, err := Waxman(30, 0.9, 0.5, rng)
	if err != nil {
		t.Fatalf("Waxman: %v", err)
	}
	if g.NumNodes() != 30 || len(pts) != 30 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.NumLinks() == 0 {
		t.Error("Waxman(α=0.9) produced no links")
	}
	if _, _, err := Waxman(5, 0, 0.5, rng); err == nil {
		t.Error("α=0 accepted")
	}
	if _, _, err := Waxman(5, 0.5, 0, rng); err == nil {
		t.Error("β=0 accepted")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, err := BarabasiAlbert(50, 2, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BarabasiAlbert(50, 2, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumLinks() != b.NumLinks() {
		t.Fatal("BA not deterministic in size")
	}
	for i := 0; i < a.NumLinks(); i++ {
		la, _ := a.Link(LinkID(i))
		lb, _ := b.Link(LinkID(i))
		if la != lb {
			t.Fatalf("BA link %d differs across equal seeds", i)
		}
	}
}

func TestComponentsAndGiant(t *testing.T) {
	g := New()
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		g.AddNode(n)
	}
	// Component 1: a–b–c; component 2: d–e.
	mustLink(t, g, 0, 1)
	mustLink(t, g, 1, 2)
	mustLink(t, g, 3, 4)
	comps := Components(g)
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 {
		t.Errorf("component sizes = %d,%d", len(comps[0]), len(comps[1]))
	}
	if Connected(g) {
		t.Error("disconnected graph reported connected")
	}
	sub, orig := GiantComponent(g)
	if sub.NumNodes() != 3 || sub.NumLinks() != 2 {
		t.Errorf("giant = %d nodes %d links", sub.NumNodes(), sub.NumLinks())
	}
	if len(orig) != 3 || orig[0] != 0 {
		t.Errorf("giant original IDs = %v", orig)
	}
	name, _ := sub.NodeName(0)
	if name != "a" {
		t.Errorf("giant node 0 = %q", name)
	}
}

func TestGiantComponentEmpty(t *testing.T) {
	sub, orig := GiantComponent(New())
	if sub.NumNodes() != 0 || orig != nil {
		t.Error("GiantComponent of empty graph not empty")
	}
}

func TestConnectedProperty(t *testing.T) {
	// Property: components partition the node set.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := ErdosRenyi(1+rng.Intn(20), rng.Float64(), rng)
		if err != nil {
			return false
		}
		comps := Components(g)
		seen := make(map[NodeID]bool)
		total := 0
		for _, c := range comps {
			total += len(c)
			for _, v := range c {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		return total == g.NumNodes()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseEdgeList(t *testing.T) {
	in := `# comment
a b
b c

a c
a b
`
	g, err := ParseEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseEdgeList: %v", err)
	}
	if g.NumNodes() != 3 || g.NumLinks() != 3 {
		t.Fatalf("parsed %d nodes %d links, want 3,3 (duplicate line tolerated)", g.NumNodes(), g.NumLinks())
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	if _, err := ParseEdgeList(strings.NewReader("a b c\n")); err == nil {
		t.Error("3-field line accepted")
	}
	if _, err := ParseEdgeList(strings.NewReader("a a\n")); err == nil {
		t.Error("self-loop accepted")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := BarabasiAlbert(20, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteEdgeList(&b, g); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	g2, err := ParseEdgeList(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParseEdgeList: %v", err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumLinks() != g.NumLinks() {
		t.Errorf("round trip %d/%d nodes, %d/%d links",
			g2.NumNodes(), g.NumNodes(), g2.NumLinks(), g.NumLinks())
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := line(t, "a", "b", "c")
	hist, degrees := DegreeHistogram(g)
	if hist[1] != 2 || hist[2] != 1 {
		t.Errorf("hist = %v", hist)
	}
	if len(degrees) != 2 || degrees[0] != 1 || degrees[1] != 2 {
		t.Errorf("degrees = %v", degrees)
	}
}

func mustLink(t *testing.T, g *Graph, a, b NodeID) LinkID {
	t.Helper()
	id, err := g.AddLink(a, b)
	if err != nil {
		t.Fatalf("AddLink(%d,%d): %v", a, b, err)
	}
	return id
}
