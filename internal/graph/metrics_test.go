package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestComputeMetricsLine(t *testing.T) {
	g := line(t, "a", "b", "c", "d")
	m := ComputeMetrics(g)
	if m.Nodes != 4 || m.Links != 3 {
		t.Fatalf("size = %d/%d", m.Nodes, m.Links)
	}
	if m.Diameter != 3 {
		t.Errorf("diameter = %d, want 3", m.Diameter)
	}
	// Distances: 1+2+3 + 1+2 + 1 = 10 over 6 pairs.
	if math.Abs(m.MeanDistance-10.0/6) > 1e-12 {
		t.Errorf("mean distance = %g, want %g", m.MeanDistance, 10.0/6)
	}
	if m.ClusteringCoeff != 0 {
		t.Errorf("clustering = %g, want 0 (no triangles)", m.ClusteringCoeff)
	}
	if m.MinDegree != 1 || m.MaxDegree != 2 {
		t.Errorf("degrees = %d/%d", m.MinDegree, m.MaxDegree)
	}
	if m.Components != 1 {
		t.Errorf("components = %d", m.Components)
	}
}

func TestComputeMetricsTriangle(t *testing.T) {
	g := New()
	for i := 0; i < 3; i++ {
		g.AddNode(string(rune('a' + i)))
	}
	mustLink(t, g, 0, 1)
	mustLink(t, g, 1, 2)
	mustLink(t, g, 2, 0)
	m := ComputeMetrics(g)
	if m.ClusteringCoeff != 1 {
		t.Errorf("triangle clustering = %g, want 1", m.ClusteringCoeff)
	}
	if m.Diameter != 1 {
		t.Errorf("diameter = %d, want 1", m.Diameter)
	}
	if m.MeanDegree != 2 {
		t.Errorf("mean degree = %g", m.MeanDegree)
	}
}

func TestComputeMetricsComplete(t *testing.T) {
	g := New()
	const n = 6
	for i := 0; i < n; i++ {
		g.AddNode(string(rune('a' + i)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			mustLink(t, g, NodeID(i), NodeID(j))
		}
	}
	m := ComputeMetrics(g)
	if m.ClusteringCoeff != 1 || m.Diameter != 1 || m.MeanDistance != 1 {
		t.Errorf("K6 metrics = %+v", m)
	}
}

func TestComputeMetricsEmptyAndDisconnected(t *testing.T) {
	if m := ComputeMetrics(New()); m.Nodes != 0 || m.Components != 0 {
		t.Errorf("empty metrics = %+v", m)
	}
	g := New()
	g.AddNode("a")
	g.AddNode("b")
	m := ComputeMetrics(g)
	if m.Components != 2 || m.Diameter != 0 || m.MeanDistance != 0 {
		t.Errorf("disconnected metrics = %+v", m)
	}
}

func TestMetricsDistinguishGeneratorFamilies(t *testing.T) {
	// BA graphs are small-world with hubs; RGGs are flat-degree with
	// long geometric distances. The metrics must reflect that.
	rng := rand.New(rand.NewSource(4))
	ba, err := BarabasiAlbert(100, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	rgg, _, err := RandomGeometric(100, math.Sqrt(20), GeometricRadiusForDegree(5, 5), rng)
	if err != nil {
		t.Fatal(err)
	}
	mBA := ComputeMetrics(ba)
	mRGG := ComputeMetrics(rgg)
	if mBA.MaxDegree <= mRGG.MaxDegree {
		t.Errorf("BA max degree %d not above RGG %d", mBA.MaxDegree, mRGG.MaxDegree)
	}
	if mBA.Diameter >= mRGG.Diameter {
		t.Errorf("BA diameter %d not below RGG %d", mBA.Diameter, mRGG.Diameter)
	}
}
