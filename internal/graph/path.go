package graph

import (
	"errors"
	"fmt"
	"strings"
)

// ErrNoPath is returned when no path exists between the requested
// endpoints.
var ErrNoPath = errors.New("graph: no path")

// Path is a walk through the graph: len(Links) == len(Nodes)−1, and
// Links[i] joins Nodes[i] and Nodes[i+1]. Paths used in tomography are
// simple (no repeated node).
type Path struct {
	Nodes []NodeID
	Links []LinkID
}

// Len returns the hop count (number of links).
func (p Path) Len() int { return len(p.Links) }

// Src returns the first node. It panics on an empty path.
func (p Path) Src() NodeID { return p.Nodes[0] }

// Dst returns the last node. It panics on an empty path.
func (p Path) Dst() NodeID { return p.Nodes[len(p.Nodes)-1] }

// HasNode reports whether v appears on the path.
func (p Path) HasNode(v NodeID) bool {
	for _, n := range p.Nodes {
		if n == v {
			return true
		}
	}
	return false
}

// HasAnyNode reports whether any node in set appears on the path.
// Endpoint monitors count: the paper allows monitors to be malicious.
func (p Path) HasAnyNode(set map[NodeID]bool) bool {
	for _, n := range p.Nodes {
		if set[n] {
			return true
		}
	}
	return false
}

// HasLink reports whether link l appears on the path.
func (p Path) HasLink(l LinkID) bool {
	for _, x := range p.Links {
		if x == l {
			return true
		}
	}
	return false
}

// HasAnyLink reports whether any link in set appears on the path.
func (p Path) HasAnyLink(set map[LinkID]bool) bool {
	for _, x := range p.Links {
		if set[x] {
			return true
		}
	}
	return false
}

// Clone deep-copies the path.
func (p Path) Clone() Path {
	n := make([]NodeID, len(p.Nodes))
	copy(n, p.Nodes)
	l := make([]LinkID, len(p.Links))
	copy(l, p.Links)
	return Path{Nodes: n, Links: l}
}

// Equal reports whether two paths visit the same nodes over the same
// links in the same order.
func (p Path) Equal(q Path) bool {
	if len(p.Nodes) != len(q.Nodes) || len(p.Links) != len(q.Links) {
		return false
	}
	for i := range p.Nodes {
		if p.Nodes[i] != q.Nodes[i] {
			return false
		}
	}
	for i := range p.Links {
		if p.Links[i] != q.Links[i] {
			return false
		}
	}
	return true
}

// Validate checks structural invariants of the path against g: length
// bookkeeping, link endpoints matching consecutive nodes, and (for
// simple paths) no repeated nodes.
func (p Path) Validate(g *Graph) error {
	if len(p.Nodes) == 0 {
		return fmt.Errorf("graph: empty path")
	}
	if len(p.Links) != len(p.Nodes)-1 {
		return fmt.Errorf("graph: path has %d nodes but %d links", len(p.Nodes), len(p.Links))
	}
	seen := make(map[NodeID]bool, len(p.Nodes))
	for _, v := range p.Nodes {
		if err := g.checkNode(v); err != nil {
			return err
		}
		if seen[v] {
			return fmt.Errorf("graph: path revisits node %d", v)
		}
		seen[v] = true
	}
	for i, lid := range p.Links {
		l, err := g.Link(lid)
		if err != nil {
			return err
		}
		if !(l.Has(p.Nodes[i]) && l.Has(p.Nodes[i+1])) {
			return fmt.Errorf("graph: link %d (%d–%d) does not join path nodes %d and %d",
				lid, l.A, l.B, p.Nodes[i], p.Nodes[i+1])
		}
	}
	return nil
}

// Format renders the path with node names when g is non-nil: "A→B→C".
func (p Path) Format(g *Graph) string {
	var b strings.Builder
	for i, v := range p.Nodes {
		if i > 0 {
			b.WriteString("→")
		}
		if g != nil {
			if name, err := g.NodeName(v); err == nil {
				b.WriteString(name)
				continue
			}
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// SimplePaths enumerates simple paths from src to dst by depth-first
// search. maxHops bounds path length (0 means no bound); maxPaths bounds
// how many paths are returned (0 means no bound). Neighbor order is
// insertion order, so enumeration is deterministic.
func SimplePaths(g *Graph, src, dst NodeID, maxHops, maxPaths int) ([]Path, error) {
	if err := g.checkNode(src); err != nil {
		return nil, err
	}
	if err := g.checkNode(dst); err != nil {
		return nil, err
	}
	if src == dst {
		return nil, fmt.Errorf("graph: SimplePaths from %d to itself: %w", src, ErrNoPath)
	}
	var (
		out     []Path
		nodes   = []NodeID{src}
		links   []LinkID
		visited = make(map[NodeID]bool)
	)
	visited[src] = true
	var dfs func(v NodeID) bool // returns false when maxPaths reached
	dfs = func(v NodeID) bool {
		if maxHops > 0 && len(links) >= maxHops {
			return true
		}
		for _, e := range g.adj[v] {
			if visited[e.to] {
				continue
			}
			nodes = append(nodes, e.to)
			links = append(links, e.link)
			if e.to == dst {
				out = append(out, Path{Nodes: append([]NodeID(nil), nodes...), Links: append([]LinkID(nil), links...)})
				if maxPaths > 0 && len(out) >= maxPaths {
					nodes = nodes[:len(nodes)-1]
					links = links[:len(links)-1]
					return false
				}
			} else {
				visited[e.to] = true
				ok := dfs(e.to)
				visited[e.to] = false
				if !ok {
					nodes = nodes[:len(nodes)-1]
					links = links[:len(links)-1]
					return false
				}
			}
			nodes = nodes[:len(nodes)-1]
			links = links[:len(links)-1]
		}
		return true
	}
	dfs(src)
	if len(out) == 0 {
		return nil, fmt.Errorf("graph: no simple path %d→%d within %d hops: %w", src, dst, maxHops, ErrNoPath)
	}
	return out, nil
}

// ShortestPath returns a minimum-hop path from src to dst by BFS, with
// deterministic neighbor order.
func ShortestPath(g *Graph, src, dst NodeID) (Path, error) {
	if err := g.checkNode(src); err != nil {
		return Path{}, err
	}
	if err := g.checkNode(dst); err != nil {
		return Path{}, err
	}
	if src == dst {
		return Path{}, fmt.Errorf("graph: ShortestPath from %d to itself: %w", src, ErrNoPath)
	}
	preds := make(map[NodeID]pred)
	visited := make(map[NodeID]bool)
	visited[src] = true
	queue := []NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[v] {
			if visited[e.to] {
				continue
			}
			visited[e.to] = true
			preds[e.to] = pred{node: v, link: e.link}
			if e.to == dst {
				return rebuild(src, dst, preds), nil
			}
			queue = append(queue, e.to)
		}
	}
	return Path{}, fmt.Errorf("graph: %d and %d disconnected: %w", src, dst, ErrNoPath)
}

func rebuild(src, dst NodeID, preds map[NodeID]pred) Path {
	var nodes []NodeID
	var links []LinkID
	for v := dst; v != src; {
		p := preds[v]
		nodes = append(nodes, v)
		links = append(links, p.link)
		v = p.node
	}
	nodes = append(nodes, src)
	// Reverse into src→dst order.
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	for i, j := 0, len(links)-1; i < j; i, j = i+1, j-1 {
		links[i], links[j] = links[j], links[i]
	}
	return Path{Nodes: nodes, Links: links}
}

type pred struct {
	node NodeID
	link LinkID
}
